package colstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"privateclean/internal/atomicio"
	"privateclean/internal/faults"
	"privateclean/internal/relation"
)

// blockRef locates one data block and its checksum.
type blockRef struct {
	off  uint64
	size uint64
	crc  uint32
}

// colLayout is the planned placement of one column's blocks.
type colLayout struct {
	name        string
	kind        byte
	domainCount uint32
	domain      blockRef // discrete only
	codes       blockRef // discrete only
	values      blockRef // numeric only
}

// Write serializes rel into the .pcol format and returns the number of bytes
// written. Discrete columns are written from their dictionary encoding
// (building it if not already cached), numeric columns as raw float64 bits.
func Write(w io.Writer, rel *relation.Relation) (int64, error) {
	rows := uint64(rel.NumRows())
	cols := rel.Schema().Columns()
	if rows > maxRows {
		return 0, faults.Errorf(faults.ErrBadInput, "colstore: %d rows exceeds the format bound", rows)
	}
	if uint64(len(cols)) > maxCols {
		return 0, faults.Errorf(faults.ErrBadInput, "colstore: %d columns exceeds the format bound", len(cols))
	}

	// Plan the layout: domain blocks need their encoded size up front, so
	// dictionary-encode every discrete column first.
	layouts := make([]colLayout, len(cols))
	indexes := make(map[string]*relation.DiscreteIndex, len(cols))
	off := uint64(headerSize)
	for i, c := range cols {
		l := colLayout{name: c.Name}
		switch c.Kind {
		case relation.Numeric:
			l.kind = kindNumeric
			off = align8(off)
			l.values = blockRef{off: off, size: rows * 8}
			off += l.values.size
		case relation.Discrete:
			l.kind = kindDiscrete
			ix, err := rel.DiscreteIndex(c.Name)
			if err != nil {
				return 0, faults.Wrap(faults.ErrBadInput, err)
			}
			indexes[c.Name] = ix
			l.domainCount = uint32(ix.N())
			l.domain = blockRef{off: off, size: domainSize(ix.Domain)}
			off += l.domain.size
			off = align8(off)
			l.codes = blockRef{off: off, size: rows * 4}
			off += l.codes.size
		default:
			return 0, faults.Errorf(faults.ErrBadInput, "colstore: column %q has unsupported kind %v", c.Name, c.Kind)
		}
		layouts[i] = l
	}
	dirOff := off

	cw := &countingWriter{w: bufio.NewWriterSize(w, 1<<16)}

	// Header.
	var hdr [headerSize]byte
	copy(hdr[0:4], magic)
	binary.LittleEndian.PutUint16(hdr[4:6], formatVersion)
	binary.LittleEndian.PutUint16(hdr[6:8], 0)
	binary.LittleEndian.PutUint64(hdr[8:16], rows)
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(len(cols)))
	binary.LittleEndian.PutUint64(hdr[20:28], dirOff)
	binary.LittleEndian.PutUint32(hdr[28:32], crc32.ChecksumIEEE(hdr[:28]))
	if _, err := cw.Write(hdr[:]); err != nil {
		return cw.n, err
	}

	// Column data blocks, with zero padding up to each block's planned offset.
	for i, c := range cols {
		l := &layouts[i]
		switch l.kind {
		case kindNumeric:
			if err := cw.pad(l.values.off); err != nil {
				return cw.n, err
			}
			crc, err := writeNumeric(cw, rel.MustNumeric(c.Name))
			if err != nil {
				return cw.n, err
			}
			l.values.crc = crc
		case kindDiscrete:
			ix := indexes[c.Name]
			if err := cw.pad(l.domain.off); err != nil {
				return cw.n, err
			}
			crc, err := writeDomain(cw, ix.Domain)
			if err != nil {
				return cw.n, err
			}
			l.domain.crc = crc
			if err := cw.pad(l.codes.off); err != nil {
				return cw.n, err
			}
			if crc, err = writeCodes(cw, ix.Codes); err != nil {
				return cw.n, err
			}
			l.codes.crc = crc
		}
	}

	// Directory and footer.
	if err := cw.pad(dirOff); err != nil {
		return cw.n, err
	}
	dir := encodeDirectory(layouts)
	if _, err := cw.Write(dir); err != nil {
		return cw.n, err
	}
	var ftr [footerSize]byte
	binary.LittleEndian.PutUint64(ftr[0:8], uint64(len(dir)))
	binary.LittleEndian.PutUint32(ftr[8:12], crc32.ChecksumIEEE(dir))
	copy(ftr[12:16], footerMagic)
	if _, err := cw.Write(ftr[:]); err != nil {
		return cw.n, err
	}
	if err := cw.w.(*bufio.Writer).Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// WriteFile writes rel to path atomically (temp file + rename) and returns
// the packed size in bytes.
func WriteFile(path string, rel *relation.Relation) (int64, error) {
	var n int64
	err := atomicio.WriteFile(path, func(w io.Writer) error {
		var werr error
		n, werr = Write(w, rel)
		return werr
	})
	return n, err
}

// domainSize returns the encoded size of a domain block.
func domainSize(domain []string) uint64 {
	n := uint64(uvarintLen(uint64(len(domain))))
	for _, v := range domain {
		n += uint64(uvarintLen(uint64(len(v)))) + uint64(len(v))
	}
	return n
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// writeNumeric emits a numeric column as packed little-endian float64 bits,
// returning the block's CRC.
func writeNumeric(w io.Writer, col []float64) (uint32, error) {
	crc := crc32.NewIEEE()
	var buf [512 * 8]byte
	for len(col) > 0 {
		n := len(col)
		if n > 512 {
			n = 512
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(col[i]))
		}
		chunk := buf[:n*8]
		crc.Write(chunk)
		if _, err := w.Write(chunk); err != nil {
			return 0, err
		}
		col = col[n:]
	}
	return crc.Sum32(), nil
}

// writeCodes emits a code vector as packed little-endian uint32.
func writeCodes(w io.Writer, codes []uint32) (uint32, error) {
	crc := crc32.NewIEEE()
	var buf [1024 * 4]byte
	for len(codes) > 0 {
		n := len(codes)
		if n > 1024 {
			n = 1024
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], codes[i])
		}
		chunk := buf[:n*4]
		crc.Write(chunk)
		if _, err := w.Write(chunk); err != nil {
			return 0, err
		}
		codes = codes[n:]
	}
	return crc.Sum32(), nil
}

// writeDomain emits a domain block: uvarint count, then each value as
// uvarint length + raw bytes. The domain is already sorted (DiscreteIndex
// invariant), which Decode re-verifies.
func writeDomain(w io.Writer, domain []string) (uint32, error) {
	crc := crc32.NewIEEE()
	buf := binary.AppendUvarint(nil, uint64(len(domain)))
	for _, v := range domain {
		buf = binary.AppendUvarint(buf, uint64(len(v)))
		buf = append(buf, v...)
	}
	crc.Write(buf)
	if _, err := w.Write(buf); err != nil {
		return 0, err
	}
	return crc.Sum32(), nil
}

// encodeDirectory serializes the column directory.
func encodeDirectory(layouts []colLayout) []byte {
	var dir []byte
	for _, l := range layouts {
		dir = binary.AppendUvarint(dir, uint64(len(l.name)))
		dir = append(dir, l.name...)
		dir = append(dir, l.kind)
		switch l.kind {
		case kindNumeric:
			dir = appendBlockRef(dir, l.values)
		case kindDiscrete:
			dir = binary.LittleEndian.AppendUint32(dir, l.domainCount)
			dir = appendBlockRef(dir, l.domain)
			dir = appendBlockRef(dir, l.codes)
		}
	}
	return dir
}

func appendBlockRef(dir []byte, b blockRef) []byte {
	dir = binary.LittleEndian.AppendUint64(dir, b.off)
	dir = binary.LittleEndian.AppendUint64(dir, b.size)
	dir = binary.LittleEndian.AppendUint32(dir, b.crc)
	return dir
}

// countingWriter tracks the absolute file offset so padding can be emitted
// up to each block's planned position.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// pad writes zero bytes up to the absolute offset off.
func (cw *countingWriter) pad(off uint64) error {
	if uint64(cw.n) > off {
		return fmt.Errorf("colstore: internal layout error: at offset %d, past planned %d", cw.n, off)
	}
	var zeros [8]byte
	for uint64(cw.n) < off {
		n := off - uint64(cw.n)
		if n > 8 {
			n = 8
		}
		if _, err := cw.Write(zeros[:n]); err != nil {
			return err
		}
	}
	return nil
}
