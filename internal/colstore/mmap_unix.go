//go:build unix

package colstore

import (
	"os"
	"syscall"
)

// mapFile memory-maps path read-only. The returned release func unmaps; the
// data must not be touched after it runs. Empty files map to an empty slice
// (mmap of length 0 is an error on most kernels, and Decode rejects the
// short file anyway).
func mapFile(path string) (data []byte, release func() error, mapped bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, false, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, false, err
	}
	size := st.Size()
	if size == 0 {
		return []byte{}, func() error { return nil }, true, nil
	}
	if size != int64(int(size)) {
		return nil, nil, false, syscall.EFBIG
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, false, err
	}
	return data, func() error { return syscall.Munmap(data) }, true, nil
}
