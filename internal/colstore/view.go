package colstore

import (
	"fmt"

	"privateclean/internal/faults"
	"privateclean/internal/relation"
)

// View is an opened .pcol file: a decoded relation plus the mapping (if any)
// backing its column data.
type View struct {
	rel     *relation.Relation
	release func() error
	// Mapped reports whether the column data aliases a memory mapping
	// (true on Unix hosts) or was read into the heap.
	Mapped bool
}

// Open maps (or, on platforms without mmap, reads) a .pcol file and decodes
// it. Corrupt or truncated files yield a faults.ErrBadInput error.
func Open(path string) (*View, error) {
	data, release, mapped, err := mapFile(path)
	if err != nil {
		return nil, faults.Wrap(faults.ErrBadInput, fmt.Errorf("colstore: open %s: %w", path, err))
	}
	rel, err := Decode(data)
	if err != nil {
		if release != nil {
			release()
		}
		return nil, faults.Wrap(faults.ErrBadInput, fmt.Errorf("colstore: open %s: %w", path, err))
	}
	return &View{rel: rel, release: release, Mapped: mapped}, nil
}

// Relation returns the decoded relation. On a mapped view its numeric and
// code data alias the mapping — the relation must not be used after Close.
func (v *View) Relation() *relation.Relation { return v.rel }

// Close releases the underlying mapping. After Close, a mapped view's
// relation is invalid: touching its numeric columns or code vectors faults.
// Close is idempotent.
func (v *View) Close() error {
	if v.release == nil {
		return nil
	}
	rel := v.release
	v.release = nil
	return rel()
}
