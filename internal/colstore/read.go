package colstore

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"sort"
	"unsafe"

	"privateclean/internal/faults"
	"privateclean/internal/relation"
)

// corruptf builds the typed error every malformed input maps to. The whole
// reader funnels through it so a fuzzer (and a caller's errors.Is) sees one
// kind: faults.ErrBadInput.
func corruptf(format string, args ...any) error {
	return faults.Errorf(faults.ErrBadInput, "colstore: "+format, args...)
}

// isLittleEndian reports whether the host matches the format's byte order,
// which is what permits aliasing mapped bytes as typed slices.
var isLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Decode parses a complete .pcol image and reconstructs the relation,
// installing each discrete column's serialized dictionary encoding so no
// index is ever rebuilt at query time.
//
// The returned relation's numeric columns and code vectors alias data when
// the host is little-endian and the blocks are 8-byte aligned in memory
// (always true for a file mapping); otherwise they are decoded into fresh
// slices. Callers that alias a memory mapping must keep it valid for the
// relation's lifetime — View manages that pairing.
//
// Decode never panics on malformed input: every offset and size is
// bounds-checked against the image, every CRC verified, and every violation
// returned as a faults.ErrBadInput error.
func Decode(data []byte) (*relation.Relation, error) {
	if uint64(len(data)) < headerSize+footerSize {
		return nil, corruptf("file too short: %d bytes", len(data))
	}

	// Header.
	hdr := data[:headerSize]
	if string(hdr[0:4]) != magic {
		return nil, corruptf("bad magic %q", hdr[0:4])
	}
	if got := binary.LittleEndian.Uint32(hdr[28:32]); got != crc32.ChecksumIEEE(hdr[:28]) {
		return nil, corruptf("header checksum mismatch")
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != formatVersion {
		return nil, corruptf("unsupported format version %d (this build reads version %d)", v, formatVersion)
	}
	if f := binary.LittleEndian.Uint16(hdr[6:8]); f != 0 {
		return nil, corruptf("unknown flags %#x", f)
	}
	rows64 := binary.LittleEndian.Uint64(hdr[8:16])
	ncols := binary.LittleEndian.Uint32(hdr[16:20])
	dirOff := binary.LittleEndian.Uint64(hdr[20:28])
	if rows64 > maxRows {
		return nil, corruptf("row count %d exceeds the format bound", rows64)
	}
	if ncols > maxCols {
		return nil, corruptf("column count %d exceeds the format bound", ncols)
	}
	rows := int(rows64)

	// Footer. The directory must fill the file between its offset and the
	// footer exactly.
	ftr := data[len(data)-footerSize:]
	if string(ftr[12:16]) != footerMagic {
		return nil, corruptf("bad footer magic %q", ftr[12:16])
	}
	dirSize := binary.LittleEndian.Uint64(ftr[0:8])
	dataEnd := uint64(len(data) - footerSize)
	if dirOff < headerSize || dirOff > dataEnd || dataEnd-dirOff != dirSize {
		return nil, corruptf("directory [%d,+%d) does not fit the file", dirOff, dirSize)
	}
	dir := data[dirOff:dataEnd]
	if got := binary.LittleEndian.Uint32(ftr[8:12]); got != crc32.ChecksumIEEE(dir) {
		return nil, corruptf("directory checksum mismatch")
	}

	// Directory: one entry per column, consumed exactly.
	cur := cursor{b: dir}
	cols := make([]relation.Column, 0, ncols)
	numeric := make(map[string][]float64)
	discrete := make(map[string][]string)
	indexes := make(map[string]*relation.DiscreteIndex)
	for i := uint32(0); i < ncols; i++ {
		name, err := cur.str()
		if err != nil {
			return nil, corruptf("directory entry %d: %v", i, err)
		}
		if name == "" {
			return nil, corruptf("directory entry %d: empty column name", i)
		}
		if _, dup := numeric[name]; dup {
			return nil, corruptf("duplicate column %q", name)
		}
		if _, dup := discrete[name]; dup {
			return nil, corruptf("duplicate column %q", name)
		}
		kind, err := cur.byte()
		if err != nil {
			return nil, corruptf("directory entry %q: %v", name, err)
		}
		switch kind {
		case kindNumeric:
			ref, err := cur.blockRef()
			if err != nil {
				return nil, corruptf("directory entry %q: %v", name, err)
			}
			block, err := checkBlock(data, dirOff, ref, uint64(rows)*8, 8)
			if err != nil {
				return nil, corruptf("numeric column %q: %v", name, err)
			}
			numeric[name] = decodeFloats(block, rows)
			cols = append(cols, relation.Column{Name: name, Kind: relation.Numeric})
		case kindDiscrete:
			domainCount, err := cur.u32()
			if err != nil {
				return nil, corruptf("directory entry %q: %v", name, err)
			}
			domRef, err := cur.blockRef()
			if err != nil {
				return nil, corruptf("directory entry %q: %v", name, err)
			}
			codesRef, err := cur.blockRef()
			if err != nil {
				return nil, corruptf("directory entry %q: %v", name, err)
			}
			domBlock, err := checkBlock(data, dirOff, domRef, domRef.size, 1)
			if err != nil {
				return nil, corruptf("domain of column %q: %v", name, err)
			}
			domain, err := decodeDomain(domBlock, domainCount, rows)
			if err != nil {
				return nil, corruptf("domain of column %q: %v", name, err)
			}
			codesBlock, err := checkBlock(data, dirOff, codesRef, uint64(rows)*4, 4)
			if err != nil {
				return nil, corruptf("codes of column %q: %v", name, err)
			}
			codes := decodeCodes(codesBlock, rows)
			col := make([]string, rows)
			n := uint32(len(domain))
			for r, c := range codes {
				if c >= n {
					return nil, corruptf("codes of column %q: row %d has code %d, domain size %d", name, r, c, n)
				}
				col[r] = domain[c]
			}
			discrete[name] = col
			indexes[name] = &relation.DiscreteIndex{Domain: domain, Codes: codes}
			cols = append(cols, relation.Column{Name: name, Kind: relation.Discrete})
		default:
			return nil, corruptf("directory entry %q: unknown column kind %d", name, kind)
		}
	}
	if len(cur.b) != 0 {
		return nil, corruptf("%d trailing bytes after the last directory entry", len(cur.b))
	}

	schema, err := relation.NewSchema(cols...)
	if err != nil {
		return nil, faults.Wrap(faults.ErrBadInput, err)
	}
	rel, err := relation.FromBacking(schema, rows, numeric, discrete)
	if err != nil {
		return nil, faults.Wrap(faults.ErrBadInput, err)
	}
	for name, ix := range indexes {
		if err := rel.AdoptIndex(name, ix); err != nil {
			return nil, faults.Wrap(faults.ErrBadInput, err)
		}
	}
	return rel, nil
}

// checkBlock validates one data block reference — inside the data region,
// the exact expected size, aligned, checksum intact — and returns its bytes.
// wantSize of ref.size skips the size equality (domain blocks are
// variable-length; their internal structure is validated by decodeDomain).
func checkBlock(data []byte, dirOff uint64, ref blockRef, wantSize uint64, align uint64) ([]byte, error) {
	if ref.size != wantSize {
		return nil, corruptf("block size %d, want %d", ref.size, wantSize)
	}
	if ref.off < headerSize || ref.off > dirOff || dirOff-ref.off < ref.size {
		return nil, corruptf("block [%d,+%d) outside the data region [%d,%d)", ref.off, ref.size, headerSize, dirOff)
	}
	if align > 1 && ref.off%align != 0 {
		return nil, corruptf("block offset %d not %d-byte aligned", ref.off, align)
	}
	block := data[ref.off : ref.off+ref.size]
	if crc32.ChecksumIEEE(block) != ref.crc {
		return nil, corruptf("block checksum mismatch")
	}
	return block, nil
}

// decodeFloats returns the numeric column backed by block: aliased in place
// when the host byte order and alignment permit, decoded otherwise.
func decodeFloats(block []byte, rows int) []float64 {
	if rows == 0 {
		return []float64{}
	}
	if isLittleEndian && uintptr(unsafe.Pointer(&block[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&block[0])), rows)
	}
	out := make([]float64, rows)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(block[i*8:]))
	}
	return out
}

// decodeCodes returns the code vector backed by block, aliased when
// possible.
func decodeCodes(block []byte, rows int) []uint32 {
	if rows == 0 {
		return []uint32{}
	}
	if isLittleEndian && uintptr(unsafe.Pointer(&block[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&block[0])), rows)
	}
	out := make([]uint32, rows)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(block[i*4:])
	}
	return out
}

// decodeDomain parses a domain block, enforcing the DiscreteIndex
// invariants: the declared count matches, values are strictly ascending
// (sorted and unique), the block is consumed exactly, and the count cannot
// exceed the row count (a domain is the set of values present).
func decodeDomain(block []byte, declared uint32, rows int) ([]string, error) {
	cur := cursor{b: block}
	count, err := cur.uvarint()
	if err != nil {
		return nil, err
	}
	if count != uint64(declared) {
		return nil, corruptf("domain declares %d values in the directory, %d in the block", declared, count)
	}
	if count > uint64(rows) {
		return nil, corruptf("domain of %d values exceeds the %d rows", count, rows)
	}
	domain := make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		v, err := cur.str()
		if err != nil {
			return nil, err
		}
		if i > 0 && domain[i-1] >= v {
			return nil, corruptf("domain not strictly sorted at value %d", i)
		}
		// Copy out of the (possibly mapped) block: domain strings are shared
		// by the materialized column, so they must outlive any unmap.
		domain = append(domain, string([]byte(v)))
	}
	if len(cur.b) != 0 {
		return nil, corruptf("%d trailing bytes after the last domain value", len(cur.b))
	}
	if !sort.StringsAreSorted(domain) {
		return nil, corruptf("domain not sorted") // unreachable; kept as a belt
	}
	return domain, nil
}

// cursor is a bounds-checked reader over a byte slice. Every read either
// consumes exactly what it asks for or fails; nothing indexes past the end.
type cursor struct {
	b []byte
}

func (c *cursor) take(n uint64) ([]byte, error) {
	if uint64(len(c.b)) < n {
		return nil, corruptf("truncated: need %d bytes, have %d", n, len(c.b))
	}
	out := c.b[:n]
	c.b = c.b[n:]
	return out, nil
}

func (c *cursor) byte() (byte, error) {
	b, err := c.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (c *cursor) u32() (uint32, error) {
	b, err := c.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (c *cursor) u64() (uint64, error) {
	b, err := c.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (c *cursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b)
	if n <= 0 {
		return 0, corruptf("bad uvarint")
	}
	c.b = c.b[n:]
	return v, nil
}

// str reads a uvarint-length-prefixed string. The bytes still alias the
// cursor's backing slice; callers that retain them must copy.
func (c *cursor) str() (string, error) {
	n, err := c.uvarint()
	if err != nil {
		return "", err
	}
	b, err := c.take(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (c *cursor) blockRef() (blockRef, error) {
	off, err := c.u64()
	if err != nil {
		return blockRef{}, err
	}
	size, err := c.u64()
	if err != nil {
		return blockRef{}, err
	}
	crc, err := c.u32()
	if err != nil {
		return blockRef{}, err
	}
	return blockRef{off: off, size: size, crc: crc}, nil
}
