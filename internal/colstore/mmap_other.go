//go:build !unix

package colstore

import "os"

// mapFile reads path into memory on platforms without mmap support. The
// release func is a no-op; the data is ordinary heap memory.
func mapFile(path string) (data []byte, release func() error, mapped bool, err error) {
	data, err = os.ReadFile(path)
	if err != nil {
		return nil, nil, false, err
	}
	return data, func() error { return nil }, false, nil
}
