// Package colstore implements the .pcol binary columnar format: the
// on-disk representation of a (cleaned) private relation that `serve -col`
// and `query -col` open without parsing.
//
// CSV is the interchange format of the pipeline, but loading one means
// tokenizing, validating, and dictionary-encoding every cell on every
// startup. The estimators (PrivateClean Section 5) only ever consume the
// dictionary encoding — a sorted domain plus one uint32 code per row — and
// raw float64 columns, so .pcol stores exactly that: the serialized
// relation.DiscreteIndex per discrete column and the packed float64 bits per
// numeric column. Opening a packed view is a handful of CRC checks plus
// pointer arithmetic; on Unix the column data is mmap'ed, so resident memory
// is page-cache backed and startup cost is independent of row count.
//
// # File layout (version 1, little-endian throughout)
//
//	offset  size  field
//	0       4     magic "PCOL"
//	4       2     format version (1)
//	6       2     flags (0 in version 1)
//	8       8     row count
//	16      4     column count
//	20      8     directory offset
//	28      4     CRC-32 (IEEE) of header bytes [0,28)
//
// Column data blocks follow the header in schema order. Every fixed-width
// block (numeric values, discrete codes) starts on an 8-byte-aligned file
// offset so a mapped file can be aliased directly as []float64 / []uint32;
// alignment gaps are zero padding.
//
//	numeric column   rows × 8 bytes: IEEE-754 float64 bits
//	discrete column  domain block: uvarint count, then per value
//	                 (uvarint length, raw bytes), values strictly ascending;
//	                 codes block (8-aligned): rows × 4 bytes uint32, each
//	                 code < domain count
//
// The directory sits at the header's directory offset and holds one entry
// per column in schema order:
//
//	name (uvarint length + bytes), kind (1 byte: 0 numeric, 1 discrete)
//	numeric:  offset u64, size u64, CRC-32 u32
//	discrete: domain count u32,
//	          domain offset u64, size u64, CRC-32 u32,
//	          codes  offset u64, size u64, CRC-32 u32
//
// The footer is the last 16 bytes of the file:
//
//	directory size u64, directory CRC-32 u32, magic "LOCP"
//
// Every column's blocks are addressed absolutely from the directory, so a
// reader can locate, checksum, and decode any single column without touching
// the others. The header, footer, and directory carry their own CRCs; the
// per-block CRCs make corruption attributable to a specific column.
//
// Readers must treat the file as untrusted input: Decode bounds-checks every
// offset against the file and classifies all corruption as
// faults.ErrBadInput, never panicking (FuzzColstoreRead enforces this).
package colstore

// Format constants. Changing any of these is a format revision: bump
// formatVersion and teach Decode both layouts.
const (
	magic       = "PCOL"
	footerMagic = "LOCP"

	formatVersion = 1

	headerSize = 32
	footerSize = 16

	kindNumeric  = 0
	kindDiscrete = 1

	// maxRows bounds the row count a header may declare. Real inputs are
	// nowhere near it; it exists so size arithmetic on hostile headers cannot
	// overflow before the bounds checks run.
	maxRows = 1 << 40

	// maxCols bounds the column count a header may declare, for the same
	// reason.
	maxCols = 1 << 20
)

// align8 rounds an offset up to the next multiple of 8.
func align8(off uint64) uint64 { return (off + 7) &^ 7 }
