package colstore

import (
	"bytes"
	"errors"
	"testing"

	"privateclean/internal/faults"
	"privateclean/internal/relation"
)

// FuzzColstoreRead drives Decode with arbitrary bytes. A .pcol file crosses
// a trust boundary (it may come from another machine or a tampered cache),
// so the reader must reject any corruption with a typed faults error and
// never panic or read past the image. Anything the decoder accepts must
// also survive a deterministic write/decode round trip.
func FuzzColstoreRead(f *testing.F) {
	valid := encodeTestImage(f)

	seeds := [][]byte{
		valid,
		encodeEmptyImage(f),
		{},
		[]byte("PCOL"),
		valid[:headerSize],
		valid[:len(valid)-footerSize],
		valid[:len(valid)/2],
		bytes.Repeat([]byte{0xff}, headerSize+footerSize),
	}
	// A few targeted bit flips: magic, rows, directory offset, footer CRC.
	for _, off := range []int{0, 8, 20, len(valid) - 8} {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0x40
		seeds = append(seeds, mut)
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		rel, err := Decode(data)
		if err != nil {
			if !errors.Is(err, faults.ErrBadInput) {
				t.Fatalf("Decode error is not typed as bad input: %v", err)
			}
			return
		}
		// Accepted images must re-encode deterministically and round-trip.
		var buf bytes.Buffer
		if _, werr := Write(&buf, rel); werr != nil {
			t.Fatalf("accepted image but cannot re-encode: %v", werr)
		}
		back, rerr := Decode(buf.Bytes())
		if rerr != nil {
			t.Fatalf("re-encoded image does not decode: %v", rerr)
		}
		if !rel.Equal(back) {
			t.Fatalf("round trip changed the relation")
		}
	})
}

func encodeTestImage(f *testing.F) []byte {
	f.Helper()
	var buf bytes.Buffer
	if _, err := Write(&buf, testRelation(f)); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

func encodeEmptyImage(f *testing.F) []byte {
	f.Helper()
	schema := relation.MustSchema(
		relation.Column{Name: "n", Kind: relation.Numeric},
		relation.Column{Name: "d", Kind: relation.Discrete},
	)
	rel, err := relation.FromColumns(schema,
		map[string][]float64{"n": {}}, map[string][]string{"d": {}})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Write(&buf, rel); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}
