package colstore

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"privateclean/internal/faults"
	"privateclean/internal/relation"
)

// testRelation builds a relation exercising the format's edge cases: NaN,
// infinities, signed zero, NULLs, empty strings, unicode, and a
// single-valued column.
func testRelation(t testing.TB) *relation.Relation {
	t.Helper()
	schema := relation.MustSchema(
		relation.Column{Name: "amount", Kind: relation.Numeric},
		relation.Column{Name: "category", Kind: relation.Discrete},
		relation.Column{Name: "note", Kind: relation.Discrete},
		relation.Column{Name: "flag", Kind: relation.Discrete},
		relation.Column{Name: "score", Kind: relation.Numeric},
	)
	rel, err := relation.FromColumns(schema,
		map[string][]float64{
			"amount": {1.5, math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 0, 1e308},
			"score":  {-3, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6},
		},
		map[string][]string{
			"category": {"b", "a", relation.Null, "ü–🚀", "", "a", "b"},
			"note":     {"x", "x", "x", "x", "x", "x", "x"},
			"flag":     {"yes", "no", "yes", "no", "yes", "no", "yes"},
		})
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestRoundTrip(t *testing.T) {
	rel := testRelation(t)
	var buf bytes.Buffer
	n, err := Write(&buf, rel)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("Write reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Equal(got) {
		t.Fatalf("round trip changed the relation:\n  in  %v\n  out %v", rel, got)
	}
	// The serialized dictionary encoding must be adopted verbatim: the
	// decoded relation's index matches one built from scratch.
	for _, name := range rel.Schema().DiscreteNames() {
		want, err := rel.DiscreteIndex(name)
		if err != nil {
			t.Fatal(err)
		}
		gotIx, err := got.DiscreteIndex(name)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Domain, gotIx.Domain) || !reflect.DeepEqual(want.Codes, gotIx.Codes) {
			t.Fatalf("column %q: decoded index differs from rebuilt index", name)
		}
		if err := got.CheckIndex(name); err != nil {
			t.Fatalf("column %q: adopted index inconsistent: %v", name, err)
		}
	}
}

func TestRoundTripEmpty(t *testing.T) {
	schema := relation.MustSchema(
		relation.Column{Name: "x", Kind: relation.Numeric},
		relation.Column{Name: "d", Kind: relation.Discrete},
	)
	rel, err := relation.FromColumns(schema,
		map[string][]float64{"x": {}}, map[string][]string{"d": {}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Write(&buf, rel); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 0 || got.Schema().Len() != 2 {
		t.Fatalf("empty round trip: got %v", got)
	}
}

func TestWriteDeterministic(t *testing.T) {
	rel := testRelation(t)
	var a, b bytes.Buffer
	if _, err := Write(&a, rel); err != nil {
		t.Fatal(err)
	}
	if _, err := Write(&b, rel.Clone()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("packing the same relation twice produced different bytes")
	}
}

func TestOpenView(t *testing.T) {
	rel := testRelation(t)
	path := filepath.Join(t.TempDir(), "view.pcol")
	if _, err := WriteFile(path, rel); err != nil {
		t.Fatal(err)
	}
	v, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if runtime.GOOS == "linux" && !v.Mapped {
		t.Error("expected a memory-mapped view on linux")
	}
	if !rel.Equal(v.Relation()) {
		t.Fatal("mapped view differs from source relation")
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestOpenMissing(t *testing.T) {
	_, err := Open(filepath.Join(t.TempDir(), "nope.pcol"))
	if err == nil {
		t.Fatal("expected an error")
	}
	if !errors.Is(err, faults.ErrBadInput) {
		t.Fatalf("kind = %v, want ErrBadInput", faults.Kind(err))
	}
}

// TestDecodeCorrupt flips each byte of a valid image in turn and asserts the
// reader either still succeeds (padding bytes are not covered by any CRC) or
// fails with a typed ErrBadInput — never a panic and never a wrong-but-valid
// relation for a header/directory/data corruption the CRCs cover.
func TestDecodeCorrupt(t *testing.T) {
	rel := testRelation(t)
	var buf bytes.Buffer
	if _, err := Write(&buf, rel); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	for i := range img {
		cp := make([]byte, len(img))
		copy(cp, img)
		cp[i] ^= 0xff
		got, err := func() (r *relation.Relation, err error) {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("byte %d: Decode panicked: %v", i, p)
				}
			}()
			return Decode(cp)
		}()
		if err != nil {
			if !errors.Is(err, faults.ErrBadInput) {
				t.Fatalf("byte %d: kind = %v, want ErrBadInput (%v)", i, faults.Kind(err), err)
			}
			continue
		}
		// A successful decode after a flip is only legitimate for padding
		// bytes, which decode to the identical relation.
		if !rel.Equal(got) {
			t.Fatalf("byte %d: corrupted image decoded to a different relation", i)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	rel := testRelation(t)
	var buf bytes.Buffer
	if _, err := Write(&buf, rel); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	for n := 0; n < len(img); n++ {
		if _, err := Decode(img[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		} else if !errors.Is(err, faults.ErrBadInput) {
			t.Fatalf("truncation to %d: kind = %v, want ErrBadInput", n, faults.Kind(err))
		}
	}
}
