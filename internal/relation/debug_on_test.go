//go:build pcdebug

package relation

import "testing"

// TestDebugAssertStaleIndex verifies that pcdebug builds turn a stale cache
// hit into a panic at the point of use. Run with: go test -tags pcdebug.
func TestDebugAssertStaleIndex(t *testing.T) {
	schema := MustSchema(Column{Name: "d", Kind: Discrete})
	r, err := FromColumns(schema, nil, map[string][]string{"d": {"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.DiscreteIndex("d"); err != nil {
		t.Fatal(err)
	}
	r.MustDiscrete("d")[0] = "mutated-in-place"
	defer func() {
		if recover() == nil {
			t.Fatal("stale cache hit did not panic under pcdebug")
		}
	}()
	r.DiscreteIndex("d")
}
