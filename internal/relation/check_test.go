package relation

import (
	"errors"
	"testing"
)

func twoColRelation(t *testing.T) *Relation {
	t.Helper()
	schema := MustSchema(
		Column{Name: "d", Kind: Discrete},
		Column{Name: "x", Kind: Numeric},
	)
	r, err := FromColumns(schema,
		map[string][]float64{"x": {1, 2, 3}},
		map[string][]string{"d": {"a", "b", "a"}})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCheckIndexClean(t *testing.T) {
	r := twoColRelation(t)
	// No cached entry yet: nothing to check.
	if err := r.CheckIndex("d"); err != nil {
		t.Fatalf("before build: %v", err)
	}
	if _, err := r.DiscreteIndex("d"); err != nil {
		t.Fatal(err)
	}
	if err := r.CheckIndex("d"); err != nil {
		t.Fatalf("after build: %v", err)
	}
	// Writes through the API invalidate, so the check stays clean.
	if err := r.SetDiscrete("d", 0, "c"); err != nil {
		t.Fatal(err)
	}
	if err := r.CheckIndex("d"); err != nil {
		t.Fatalf("after SetDiscrete: %v", err)
	}
}

// TestCheckIndexMissedInvalidation is the regression test for the bug class
// the debug assertion exists for: code that rewrites a discrete column's
// backing slice in place without calling InvalidateIndex. The stale cached
// index must be detected, and invalidating must clear the condition.
func TestCheckIndexMissedInvalidation(t *testing.T) {
	r := twoColRelation(t)
	if _, err := r.DiscreteIndex("d"); err != nil {
		t.Fatal(err)
	}
	// Mutate the backing slice directly, bypassing SetDiscrete — the missed
	// invalidation.
	r.MustDiscrete("d")[0] = "zzz"
	err := r.CheckIndex("d")
	var stale *StaleIndexError
	if !errors.As(err, &stale) {
		t.Fatalf("CheckIndex = %v, want *StaleIndexError", err)
	}
	if stale.Column != "d" {
		t.Fatalf("stale column = %q, want %q", stale.Column, "d")
	}
	r.InvalidateIndex("d")
	if err := r.CheckIndex("d"); err != nil {
		t.Fatalf("after InvalidateIndex: %v", err)
	}
	// And the rebuilt index reflects the mutated data.
	ix, err := r.DiscreteIndex("d")
	if err != nil {
		t.Fatal(err)
	}
	if ix.Domain[ix.Codes[0]] != "zzz" {
		t.Fatalf("rebuilt index decodes row 0 to %q", ix.Domain[ix.Codes[0]])
	}
}

func TestCheckIndexDomainDrift(t *testing.T) {
	r := twoColRelation(t)
	if _, err := r.DiscreteIndex("d"); err != nil {
		t.Fatal(err)
	}
	// Collapse "b" into "a" in place: every code still decodes to some value,
	// but domain value "b" is no longer present — the subtle drift case.
	col := r.MustDiscrete("d")
	for i := range col {
		col[i] = "a"
	}
	var stale *StaleIndexError
	if err := r.CheckIndex("d"); !errors.As(err, &stale) {
		t.Fatalf("CheckIndex = %v, want *StaleIndexError", err)
	}
}

func TestAdoptIndexValidation(t *testing.T) {
	r := twoColRelation(t)
	good := &DiscreteIndex{Domain: []string{"a", "b"}, Codes: []uint32{0, 1, 0}}
	if err := r.AdoptIndex("d", good); err != nil {
		t.Fatalf("valid adopt: %v", err)
	}
	if err := r.CheckIndex("d"); err != nil {
		t.Fatalf("adopted index: %v", err)
	}
	cases := []struct {
		name string
		ix   *DiscreteIndex
	}{
		{"short codes", &DiscreteIndex{Domain: []string{"a"}, Codes: []uint32{0}}},
		{"unsorted domain", &DiscreteIndex{Domain: []string{"b", "a"}, Codes: []uint32{0, 1, 0}}},
		{"duplicate domain", &DiscreteIndex{Domain: []string{"a", "a"}, Codes: []uint32{0, 1, 0}}},
		{"code out of range", &DiscreteIndex{Domain: []string{"a", "b"}, Codes: []uint32{0, 2, 0}}},
	}
	for _, tc := range cases {
		if err := r.AdoptIndex("d", tc.ix); err == nil {
			t.Errorf("%s: AdoptIndex succeeded", tc.name)
		}
	}
	if err := r.AdoptIndex("x", good); err == nil {
		t.Error("adopting an index for a numeric column succeeded")
	}
	if err := r.AdoptIndex("missing", good); err == nil {
		t.Error("adopting an index for an unknown column succeeded")
	}
}
