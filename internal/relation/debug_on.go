//go:build pcdebug

package relation

// debugAssertEnabled reports whether cache-hit index verification is
// compiled in.
const debugAssertEnabled = true

// debugCheckIndex panics when a cached DiscreteIndex disagrees with its
// column. Enabled by `go test -tags pcdebug`; the panic turns a silent
// wrong-answer bug (stale dictionary feeding the estimators) into an
// immediate failure at the offending cache hit.
func debugCheckIndex(name string, ix *DiscreteIndex, col []string) {
	if err := checkIndexAgainst(name, ix, col); err != nil {
		panic(err)
	}
}
