package relation

import (
	"io"
	"math"
	"testing"
)

func iterTestRel(t *testing.T, rows int) *Relation {
	t.Helper()
	schema := MustSchema(Column{Name: "d", Kind: Discrete}, Column{Name: "x", Kind: Numeric})
	b := NewBuilder(schema)
	for i := 0; i < rows; i++ {
		b.Append(map[string]float64{"x": float64(i)}, map[string]string{"d": string(rune('a' + i%3))})
	}
	rel, err := b.Relation()
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestWindowSharesBacking(t *testing.T) {
	rel := iterTestRel(t, 10)
	w, err := rel.Window(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumRows() != 4 {
		t.Fatalf("window rows = %d, want 4", w.NumRows())
	}
	if got := w.MustNumeric("x")[0]; got != 3 {
		t.Fatalf("window x[0] = %v, want 3", got)
	}
	// Zero-copy: a write through the window lands in the parent.
	w.MustDiscrete("d")[0] = "Z"
	if rel.MustDiscrete("d")[3] != "Z" {
		t.Fatal("window mutation did not reach parent")
	}
	// Capacity-clamped: appending to a window column cannot clobber the
	// parent's next row.
	col := w.MustNumeric("x")
	if cap(col) != len(col) {
		t.Fatalf("window cap %d != len %d", cap(col), len(col))
	}
}

func TestWindowBounds(t *testing.T) {
	rel := iterTestRel(t, 5)
	for _, bad := range [][2]int{{-1, 2}, {3, 2}, {0, 6}} {
		if _, err := rel.Window(bad[0], bad[1]); err == nil {
			t.Errorf("Window(%d,%d) accepted", bad[0], bad[1])
		}
	}
	if w, err := rel.Window(5, 5); err != nil || w.NumRows() != 0 {
		t.Fatalf("empty tail window: %v, rows %d", err, w.NumRows())
	}
}

func TestSliceIteratorCoversAllRows(t *testing.T) {
	rel := iterTestRel(t, 10)
	it := NewSliceIterator(rel, 4)
	if it.Schema().Len() != 2 {
		t.Fatal("schema lost")
	}
	var sizes []int
	total := 0.0
	for {
		w, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, w.NumRows())
		for _, v := range w.MustNumeric("x") {
			total += v
		}
	}
	if len(sizes) != 3 || sizes[0] != 4 || sizes[1] != 4 || sizes[2] != 2 {
		t.Fatalf("window sizes = %v, want [4 4 2]", sizes)
	}
	if want := 45.0; math.Abs(total-want) > 0 {
		t.Fatalf("sum over windows = %v, want %v", total, want)
	}
	if _, err := it.Next(); err != io.EOF {
		t.Fatalf("after EOF: %v", err)
	}
}

func TestSliceIteratorEmptyRelation(t *testing.T) {
	rel := iterTestRel(t, 0)
	it := NewSliceIterator(rel, 0) // default window
	if _, err := it.Next(); err != io.EOF {
		t.Fatalf("empty relation: %v, want io.EOF", err)
	}
}
