// Package relation implements the column-oriented relation substrate that
// every other PrivateClean component operates on.
//
// A Relation has a fixed Schema of numerical attributes (float64) and
// discrete attributes (string, any data type rendered as a string). This
// mirrors the data model of Section 3.1 of the paper: A = {a_1..a_l}
// numerical, D = {d_1..d_m} discrete, with all cleaning confined to the
// discrete attributes.
//
// Missing values are represented by relation.Null for discrete attributes and
// NaN for numerical attributes.
package relation

import (
	"fmt"
	"math"
	"strings"
	"sync"
)

// Null is the canonical missing-value sentinel for discrete attributes.
const Null = "NULL"

// Kind distinguishes numerical from discrete attributes.
type Kind int

const (
	// Numeric attributes hold float64 values and receive Laplace noise
	// under GRR.
	Numeric Kind = iota
	// Discrete attributes hold string values and receive randomized
	// response under GRR.
	Discrete
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Discrete:
		return "discrete"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Column describes one attribute of a schema.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of uniquely named columns.
type Schema struct {
	cols  []Column
	index map[string]int
}

// NewSchema builds a schema from the given columns. Column names must be
// non-empty and unique.
func NewSchema(cols ...Column) (Schema, error) {
	s := Schema{cols: make([]Column, len(cols)), index: make(map[string]int, len(cols))}
	copy(s.cols, cols)
	for i, c := range cols {
		if c.Name == "" {
			return Schema{}, fmt.Errorf("relation: column %d has empty name", i)
		}
		if _, dup := s.index[c.Name]; dup {
			return Schema{}, fmt.Errorf("relation: duplicate column %q", c.Name)
		}
		s.index[c.Name] = i
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on error. Intended for tests and
// static schemas.
func MustSchema(cols ...Column) Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Columns returns a copy of the schema's columns in order.
func (s Schema) Columns() []Column {
	out := make([]Column, len(s.cols))
	copy(out, s.cols)
	return out
}

// Len returns the number of columns.
func (s Schema) Len() int { return len(s.cols) }

// Lookup returns the column with the given name.
func (s Schema) Lookup(name string) (Column, bool) {
	i, ok := s.index[name]
	if !ok {
		return Column{}, false
	}
	return s.cols[i], true
}

// Has reports whether the schema contains a column with the given name.
func (s Schema) Has(name string) bool {
	_, ok := s.index[name]
	return ok
}

// NumericNames returns the names of all numeric columns in schema order.
func (s Schema) NumericNames() []string { return s.namesOf(Numeric) }

// DiscreteNames returns the names of all discrete columns in schema order.
func (s Schema) DiscreteNames() []string { return s.namesOf(Discrete) }

func (s Schema) namesOf(k Kind) []string {
	var out []string
	for _, c := range s.cols {
		if c.Kind == k {
			out = append(out, c.Name)
		}
	}
	return out
}

// String renders the schema as "name:kind, ...".
func (s Schema) String() string {
	parts := make([]string, len(s.cols))
	for i, c := range s.cols {
		parts[i] = c.Name + ":" + c.Kind.String()
	}
	return strings.Join(parts, ", ")
}

// Relation is a column-oriented table. The zero value is not usable; build
// relations with New or a Builder.
type Relation struct {
	schema   Schema
	numeric  map[string][]float64
	discrete map[string][]string
	rows     int
	// dindex caches the dictionary encoding (sorted domain + per-row codes)
	// of discrete columns; see DiscreteIndex. Entries are dropped whenever
	// the column is written. dmu guards the map so concurrent readers — the
	// query server's request handlers — can share one relation.
	dmu    sync.Mutex
	dindex map[string]*DiscreteIndex
}

// New creates an empty relation (zero rows) with the given schema.
func New(schema Schema) *Relation {
	r := &Relation{
		schema:   schema,
		numeric:  make(map[string][]float64),
		discrete: make(map[string][]string),
	}
	for _, c := range schema.cols {
		switch c.Kind {
		case Numeric:
			r.numeric[c.Name] = nil
		case Discrete:
			r.discrete[c.Name] = nil
		}
	}
	return r
}

// Schema returns the relation's schema.
func (r *Relation) Schema() Schema { return r.schema }

// NumRows returns the number of rows.
func (r *Relation) NumRows() int { return r.rows }

// Numeric returns the backing slice for a numeric column. The caller must not
// resize it; mutating elements mutates the relation.
func (r *Relation) Numeric(name string) ([]float64, error) {
	col, ok := r.numeric[name]
	if !ok {
		if _, isDisc := r.discrete[name]; isDisc {
			return nil, fmt.Errorf("relation: column %q is discrete, not numeric", name)
		}
		return nil, fmt.Errorf("relation: no column %q", name)
	}
	return col, nil
}

// Discrete returns the backing slice for a discrete column. The caller must
// not resize it; mutating elements mutates the relation.
func (r *Relation) Discrete(name string) ([]string, error) {
	col, ok := r.discrete[name]
	if !ok {
		if _, isNum := r.numeric[name]; isNum {
			return nil, fmt.Errorf("relation: column %q is numeric, not discrete", name)
		}
		return nil, fmt.Errorf("relation: no column %q", name)
	}
	return col, nil
}

// MustNumeric is like Numeric but panics on error.
func (r *Relation) MustNumeric(name string) []float64 {
	col, err := r.Numeric(name)
	if err != nil {
		panic(err)
	}
	return col
}

// MustDiscrete is like Discrete but panics on error.
func (r *Relation) MustDiscrete(name string) []string {
	col, err := r.Discrete(name)
	if err != nil {
		panic(err)
	}
	return col
}

// Row materializes one row as name->value maps. Primarily for tests, CLI
// display, and row-level user-defined functions.
type Row struct {
	Numeric  map[string]float64
	Discrete map[string]string
}

// Row returns row i of the relation.
func (r *Relation) Row(i int) (Row, error) {
	if i < 0 || i >= r.rows {
		return Row{}, fmt.Errorf("relation: row %d out of range [0,%d)", i, r.rows)
	}
	row := Row{
		Numeric:  make(map[string]float64, len(r.numeric)),
		Discrete: make(map[string]string, len(r.discrete)),
	}
	for name, col := range r.numeric {
		row.Numeric[name] = col[i]
	}
	for name, col := range r.discrete {
		row.Discrete[name] = col[i]
	}
	return row, nil
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	out := &Relation{
		schema:   r.schema,
		numeric:  make(map[string][]float64, len(r.numeric)),
		discrete: make(map[string][]string, len(r.discrete)),
		rows:     r.rows,
	}
	for name, col := range r.numeric {
		cp := make([]float64, len(col))
		copy(cp, col)
		out.numeric[name] = cp
	}
	for name, col := range r.discrete {
		cp := make([]string, len(col))
		copy(cp, col)
		out.discrete[name] = cp
	}
	// A clone's column contents are identical, so the immutable cached
	// encodings carry over; either relation invalidates independently.
	r.dmu.Lock()
	if len(r.dindex) > 0 {
		out.dindex = make(map[string]*DiscreteIndex, len(r.dindex))
		for name, ix := range r.dindex {
			out.dindex[name] = ix
		}
	}
	r.dmu.Unlock()
	return out
}

// Domain returns the sorted distinct values of a discrete column
// (Domain(d_i) in the paper). The distinct set is served from the cached
// dictionary encoding; the returned slice is a copy the caller may keep.
func (r *Relation) Domain(name string) ([]string, error) {
	ix, err := r.DiscreteIndex(name)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(ix.Domain))
	copy(out, ix.Domain)
	return out, nil
}

// DomainSize returns the number of distinct values in a discrete column.
func (r *Relation) DomainSize(name string) (int, error) {
	ix, err := r.DiscreteIndex(name)
	if err != nil {
		return 0, err
	}
	return ix.N(), nil
}

// ValueCounts returns the multiplicity of each distinct value in a discrete
// column.
func (r *Relation) ValueCounts(name string) (map[string]int, error) {
	ix, err := r.DiscreteIndex(name)
	if err != nil {
		return nil, err
	}
	perCode := make([]int, ix.N())
	for _, c := range ix.Codes {
		perCode[c]++
	}
	counts := make(map[string]int, ix.N())
	for c, n := range perCode {
		counts[ix.Domain[c]] = n
	}
	return counts, nil
}

// SetDiscrete overwrites one cell of a discrete column.
func (r *Relation) SetDiscrete(name string, i int, v string) error {
	col, err := r.Discrete(name)
	if err != nil {
		return err
	}
	if i < 0 || i >= r.rows {
		return fmt.Errorf("relation: row %d out of range [0,%d)", i, r.rows)
	}
	col[i] = v
	r.InvalidateIndex(name)
	return nil
}

// SetNumeric overwrites one cell of a numeric column.
func (r *Relation) SetNumeric(name string, i int, v float64) error {
	col, err := r.Numeric(name)
	if err != nil {
		return err
	}
	if i < 0 || i >= r.rows {
		return fmt.Errorf("relation: row %d out of range [0,%d)", i, r.rows)
	}
	col[i] = v
	return nil
}

// MapDiscrete replaces every value of a discrete column with f(value). This
// is the raw primitive behind Transform/Merge cleaners; most callers should
// go through the cleaning package so provenance is recorded.
func (r *Relation) MapDiscrete(name string, f func(string) string) error {
	col, err := r.Discrete(name)
	if err != nil {
		return err
	}
	for i, v := range col {
		col[i] = f(v)
	}
	r.InvalidateIndex(name)
	return nil
}

// AddDiscreteColumn appends a new discrete column. The values slice must have
// exactly NumRows entries; it is copied.
func (r *Relation) AddDiscreteColumn(name string, values []string) error {
	if r.schema.Has(name) {
		return fmt.Errorf("relation: column %q already exists", name)
	}
	if len(values) != r.rows {
		return fmt.Errorf("relation: column %q has %d values, relation has %d rows", name, len(values), r.rows)
	}
	cp := make([]string, len(values))
	copy(cp, values)
	r.schema.cols = append(r.schema.cols, Column{Name: name, Kind: Discrete})
	if r.schema.index == nil {
		r.schema.index = make(map[string]int)
	} else {
		// The index map may be shared with clones of the pre-extension
		// schema; copy-on-write before inserting.
		idx := make(map[string]int, len(r.schema.index)+1)
		for k, v := range r.schema.index {
			idx[k] = v
		}
		r.schema.index = idx
	}
	r.schema.index[name] = len(r.schema.cols) - 1
	r.discrete[name] = cp
	r.InvalidateIndex(name)
	return nil
}

// Project returns a new relation containing only the named columns (in the
// given order). Column data is deep-copied.
func (r *Relation) Project(names ...string) (*Relation, error) {
	cols := make([]Column, 0, len(names))
	for _, n := range names {
		c, ok := r.schema.Lookup(n)
		if !ok {
			return nil, fmt.Errorf("relation: no column %q", n)
		}
		cols = append(cols, c)
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	out := New(schema)
	out.rows = r.rows
	for _, c := range cols {
		switch c.Kind {
		case Numeric:
			cp := make([]float64, r.rows)
			copy(cp, r.numeric[c.Name])
			out.numeric[c.Name] = cp
		case Discrete:
			cp := make([]string, r.rows)
			copy(cp, r.discrete[c.Name])
			out.discrete[c.Name] = cp
		}
	}
	return out, nil
}

// Filter returns a new relation containing the rows for which keep(i) is
// true.
func (r *Relation) Filter(keep func(i int) bool) *Relation {
	idx := make([]int, 0, r.rows)
	for i := 0; i < r.rows; i++ {
		if keep(i) {
			idx = append(idx, i)
		}
	}
	out := New(r.schema)
	out.rows = len(idx)
	for name, col := range r.numeric {
		cp := make([]float64, len(idx))
		for j, i := range idx {
			cp[j] = col[i]
		}
		out.numeric[name] = cp
	}
	for name, col := range r.discrete {
		cp := make([]string, len(idx))
		for j, i := range idx {
			cp[j] = col[i]
		}
		out.discrete[name] = cp
	}
	return out
}

// Equal reports whether two relations have identical schemas and cell values.
// NaN numeric cells compare equal to NaN (so missing values round-trip).
func (r *Relation) Equal(o *Relation) bool {
	if r.rows != o.rows || len(r.schema.cols) != len(o.schema.cols) {
		return false
	}
	for i, c := range r.schema.cols {
		if o.schema.cols[i] != c {
			return false
		}
	}
	for name, col := range r.numeric {
		oc, ok := o.numeric[name]
		if !ok {
			return false
		}
		for i := range col {
			if col[i] != oc[i] && !(math.IsNaN(col[i]) && math.IsNaN(oc[i])) {
				return false
			}
		}
	}
	for name, col := range r.discrete {
		oc, ok := o.discrete[name]
		if !ok {
			return false
		}
		for i := range col {
			if col[i] != oc[i] {
				return false
			}
		}
	}
	return true
}

// String renders a compact description, not the full contents.
func (r *Relation) String() string {
	return fmt.Sprintf("Relation(%d rows; %s)", r.rows, r.schema.String())
}

// Builder assembles a relation row by row.
type Builder struct {
	rel *Relation
	err error
}

// NewBuilder creates a builder for the given schema.
func NewBuilder(schema Schema) *Builder {
	return &Builder{rel: New(schema)}
}

// Append adds one row. Missing numeric entries become NaN and missing
// discrete entries become Null; unknown names are an error surfaced by
// Relation().
func (b *Builder) Append(numeric map[string]float64, discrete map[string]string) *Builder {
	if b.err != nil {
		return b
	}
	for name := range numeric {
		if _, ok := b.rel.numeric[name]; !ok {
			b.err = fmt.Errorf("relation: append: unknown numeric column %q", name)
			return b
		}
	}
	for name := range discrete {
		if _, ok := b.rel.discrete[name]; !ok {
			b.err = fmt.Errorf("relation: append: unknown discrete column %q", name)
			return b
		}
	}
	for name := range b.rel.numeric {
		v, ok := numeric[name]
		if !ok {
			v = math.NaN()
		}
		b.rel.numeric[name] = append(b.rel.numeric[name], v)
	}
	for name := range b.rel.discrete {
		v, ok := discrete[name]
		if !ok {
			v = Null
		}
		b.rel.discrete[name] = append(b.rel.discrete[name], v)
	}
	b.rel.rows++
	return b
}

// Relation finalizes the builder.
func (b *Builder) Relation() (*Relation, error) {
	if b.err != nil {
		return nil, b.err
	}
	return b.rel, nil
}

// FromColumns builds a relation directly from column slices. All slices must
// have the same length. Slices are copied.
func FromColumns(schema Schema, numeric map[string][]float64, discrete map[string][]string) (*Relation, error) {
	r := New(schema)
	n := -1
	check := func(name string, l int) error {
		if n == -1 {
			n = l
		}
		if l != n {
			return fmt.Errorf("relation: column %q has %d values, want %d", name, l, n)
		}
		return nil
	}
	for _, c := range schema.cols {
		switch c.Kind {
		case Numeric:
			col, ok := numeric[c.Name]
			if !ok {
				return nil, fmt.Errorf("relation: missing numeric column %q", c.Name)
			}
			if err := check(c.Name, len(col)); err != nil {
				return nil, err
			}
			cp := make([]float64, len(col))
			copy(cp, col)
			r.numeric[c.Name] = cp
		case Discrete:
			col, ok := discrete[c.Name]
			if !ok {
				return nil, fmt.Errorf("relation: missing discrete column %q", c.Name)
			}
			if err := check(c.Name, len(col)); err != nil {
				return nil, err
			}
			cp := make([]string, len(col))
			copy(cp, col)
			r.discrete[c.Name] = cp
		}
	}
	if n == -1 {
		n = 0
	}
	r.rows = n
	return r, nil
}
