package relation

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) Schema {
	t.Helper()
	return MustSchema(
		Column{Name: "major", Kind: Discrete},
		Column{Name: "score", Kind: Numeric},
	)
}

func TestNewSchemaRejectsDuplicates(t *testing.T) {
	_, err := NewSchema(
		Column{Name: "a", Kind: Discrete},
		Column{Name: "a", Kind: Numeric},
	)
	if err == nil {
		t.Fatal("want error for duplicate column names")
	}
}

func TestNewSchemaRejectsEmptyName(t *testing.T) {
	_, err := NewSchema(Column{Name: "", Kind: Discrete})
	if err == nil {
		t.Fatal("want error for empty column name")
	}
}

func TestSchemaLookupAndNames(t *testing.T) {
	s := testSchema(t)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	c, ok := s.Lookup("major")
	if !ok || c.Kind != Discrete {
		t.Fatalf("Lookup(major) = %v, %v", c, ok)
	}
	if _, ok := s.Lookup("nope"); ok {
		t.Fatal("Lookup(nope) should fail")
	}
	if got := s.DiscreteNames(); len(got) != 1 || got[0] != "major" {
		t.Fatalf("DiscreteNames = %v", got)
	}
	if got := s.NumericNames(); len(got) != 1 || got[0] != "score" {
		t.Fatalf("NumericNames = %v", got)
	}
	if !strings.Contains(s.String(), "major:discrete") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestKindString(t *testing.T) {
	if Numeric.String() != "numeric" || Discrete.String() != "discrete" {
		t.Fatal("kind names wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatalf("unknown kind = %q", Kind(9).String())
	}
}

func TestBuilderRoundTrip(t *testing.T) {
	b := NewBuilder(testSchema(t))
	b.Append(map[string]float64{"score": 4}, map[string]string{"major": "ME"})
	b.Append(map[string]float64{"score": 3}, map[string]string{"major": "EE"})
	b.Append(nil, nil) // all-missing row
	r, err := b.Relation()
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != 3 {
		t.Fatalf("rows = %d", r.NumRows())
	}
	majors := r.MustDiscrete("major")
	if majors[0] != "ME" || majors[2] != Null {
		t.Fatalf("majors = %v", majors)
	}
	scores := r.MustNumeric("score")
	if scores[1] != 3 || !math.IsNaN(scores[2]) {
		t.Fatalf("scores = %v", scores)
	}
}

func TestBuilderRejectsUnknownColumns(t *testing.T) {
	b := NewBuilder(testSchema(t))
	b.Append(map[string]float64{"bogus": 1}, nil)
	if _, err := b.Relation(); err == nil {
		t.Fatal("want error for unknown numeric column")
	}
	b2 := NewBuilder(testSchema(t))
	b2.Append(nil, map[string]string{"bogus": "x"})
	if _, err := b2.Relation(); err == nil {
		t.Fatal("want error for unknown discrete column")
	}
}

func mustRel(t *testing.T) *Relation {
	t.Helper()
	r, err := FromColumns(testSchema(t),
		map[string][]float64{"score": {4, 3, 1, 5}},
		map[string][]string{"major": {"ME", "ME", "EE", "CS"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFromColumnsLengthMismatch(t *testing.T) {
	_, err := FromColumns(testSchema(t),
		map[string][]float64{"score": {1}},
		map[string][]string{"major": {"a", "b"}},
	)
	if err == nil {
		t.Fatal("want length mismatch error")
	}
}

func TestFromColumnsMissingColumn(t *testing.T) {
	_, err := FromColumns(testSchema(t),
		map[string][]float64{},
		map[string][]string{"major": {"a"}},
	)
	if err == nil {
		t.Fatal("want missing column error")
	}
}

func TestColumnAccessKindMismatch(t *testing.T) {
	r := mustRel(t)
	if _, err := r.Numeric("major"); err == nil {
		t.Fatal("Numeric(major) should fail")
	}
	if _, err := r.Discrete("score"); err == nil {
		t.Fatal("Discrete(score) should fail")
	}
	if _, err := r.Numeric("nope"); err == nil {
		t.Fatal("Numeric(nope) should fail")
	}
}

func TestDomainAndCounts(t *testing.T) {
	r := mustRel(t)
	dom, err := r.Domain("major")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"CS", "EE", "ME"}
	if len(dom) != 3 {
		t.Fatalf("domain = %v", dom)
	}
	for i := range want {
		if dom[i] != want[i] {
			t.Fatalf("domain = %v, want %v", dom, want)
		}
	}
	n, err := r.DomainSize("major")
	if err != nil || n != 3 {
		t.Fatalf("DomainSize = %d, %v", n, err)
	}
	counts, err := r.ValueCounts("major")
	if err != nil || counts["ME"] != 2 || counts["CS"] != 1 {
		t.Fatalf("counts = %v, %v", counts, err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := mustRel(t)
	c := r.Clone()
	if !r.Equal(c) {
		t.Fatal("clone should equal original")
	}
	if err := c.SetDiscrete("major", 0, "XX"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetNumeric("score", 0, 99); err != nil {
		t.Fatal(err)
	}
	if r.MustDiscrete("major")[0] != "ME" || r.MustNumeric("score")[0] != 4 {
		t.Fatal("clone mutation leaked into original")
	}
	if r.Equal(c) {
		t.Fatal("mutated clone should differ")
	}
}

func TestSetOutOfRange(t *testing.T) {
	r := mustRel(t)
	if err := r.SetDiscrete("major", 10, "x"); err == nil {
		t.Fatal("want out-of-range error")
	}
	if err := r.SetNumeric("score", -1, 0); err == nil {
		t.Fatal("want out-of-range error")
	}
}

func TestRow(t *testing.T) {
	r := mustRel(t)
	row, err := r.Row(2)
	if err != nil {
		t.Fatal(err)
	}
	if row.Discrete["major"] != "EE" || row.Numeric["score"] != 1 {
		t.Fatalf("row = %+v", row)
	}
	if _, err := r.Row(4); err == nil {
		t.Fatal("want out-of-range error")
	}
}

func TestMapDiscrete(t *testing.T) {
	r := mustRel(t)
	if err := r.MapDiscrete("major", func(v string) string { return strings.ToLower(v) }); err != nil {
		t.Fatal(err)
	}
	if r.MustDiscrete("major")[0] != "me" {
		t.Fatalf("major[0] = %q", r.MustDiscrete("major")[0])
	}
}

func TestAddDiscreteColumn(t *testing.T) {
	r := mustRel(t)
	if err := r.AddDiscreteColumn("dept", []string{"a", "b", "c", "d"}); err != nil {
		t.Fatal(err)
	}
	if !r.Schema().Has("dept") {
		t.Fatal("schema missing dept")
	}
	if got := r.MustDiscrete("dept")[3]; got != "d" {
		t.Fatalf("dept[3] = %q", got)
	}
	if err := r.AddDiscreteColumn("dept", []string{"a", "b", "c", "d"}); err == nil {
		t.Fatal("want duplicate-column error")
	}
	if err := r.AddDiscreteColumn("short", []string{"a"}); err == nil {
		t.Fatal("want length error")
	}
}

func TestAddColumnDoesNotAffectCloneSchema(t *testing.T) {
	r := mustRel(t)
	c := r.Clone()
	if err := c.AddDiscreteColumn("extra", []string{"1", "2", "3", "4"}); err != nil {
		t.Fatal(err)
	}
	if r.Schema().Has("extra") {
		t.Fatal("adding a column to the clone changed the original's schema")
	}
}

func TestProject(t *testing.T) {
	r := mustRel(t)
	p, err := r.Project("score")
	if err != nil {
		t.Fatal(err)
	}
	if p.Schema().Len() != 1 || p.NumRows() != 4 {
		t.Fatalf("projection = %v", p)
	}
	if _, err := r.Project("nope"); err == nil {
		t.Fatal("want unknown-column error")
	}
	// Deep copy: mutating the projection leaves the original intact.
	p.MustNumeric("score")[0] = -1
	if r.MustNumeric("score")[0] != 4 {
		t.Fatal("projection mutation leaked")
	}
}

func TestFilter(t *testing.T) {
	r := mustRel(t)
	majors := r.MustDiscrete("major")
	f := r.Filter(func(i int) bool { return majors[i] == "ME" })
	if f.NumRows() != 2 {
		t.Fatalf("filtered rows = %d", f.NumRows())
	}
	if f.MustNumeric("score")[1] != 3 {
		t.Fatalf("filtered score = %v", f.MustNumeric("score"))
	}
}

func TestEqualNaN(t *testing.T) {
	s := MustSchema(Column{Name: "x", Kind: Numeric})
	a, _ := FromColumns(s, map[string][]float64{"x": {math.NaN()}}, nil)
	b, _ := FromColumns(s, map[string][]float64{"x": {math.NaN()}}, nil)
	if !a.Equal(b) {
		t.Fatal("NaN cells should compare equal")
	}
	c, _ := FromColumns(s, map[string][]float64{"x": {1}}, nil)
	if a.Equal(c) {
		t.Fatal("NaN != 1")
	}
}

func TestRelationString(t *testing.T) {
	r := mustRel(t)
	if !strings.Contains(r.String(), "4 rows") {
		t.Fatalf("String = %q", r.String())
	}
}

// Property: Domain always returns sorted distinct values covering exactly the
// values present.
func TestDomainProperty(t *testing.T) {
	s := MustSchema(Column{Name: "d", Kind: Discrete})
	f := func(vals []string) bool {
		if len(vals) == 0 {
			vals = []string{"x"}
		}
		r, err := FromColumns(s, nil, map[string][]string{"d": vals})
		if err != nil {
			return false
		}
		dom, err := r.Domain("d")
		if err != nil {
			return false
		}
		seen := make(map[string]bool)
		for _, v := range vals {
			seen[v] = true
		}
		if len(dom) != len(seen) {
			return false
		}
		for i, v := range dom {
			if !seen[v] {
				return false
			}
			if i > 0 && dom[i-1] >= v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Clone is always Equal to its source.
func TestClonePropertyEqual(t *testing.T) {
	s := MustSchema(Column{Name: "d", Kind: Discrete}, Column{Name: "x", Kind: Numeric})
	f := func(ds []string, xs []float64) bool {
		n := len(ds)
		if len(xs) < n {
			n = len(xs)
		}
		r, err := FromColumns(s,
			map[string][]float64{"x": xs[:n]},
			map[string][]string{"d": ds[:n]})
		if err != nil {
			return false
		}
		return r.Equal(r.Clone())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaColumnsCopy(t *testing.T) {
	s := testSchema(t)
	cols := s.Columns()
	if len(cols) != 2 || cols[0].Name != "major" {
		t.Fatalf("columns = %v", cols)
	}
	// Mutating the copy must not affect the schema.
	cols[0].Name = "hacked"
	if _, ok := s.Lookup("major"); !ok {
		t.Fatal("Columns returned a live reference")
	}
}
