package relation

import (
	"fmt"
	"sort"
)

// FromBacking builds a relation that adopts the given column slices without
// copying. It exists for loaders that already own freshly materialized (or
// memory-mapped) columns — the colstore reader — where FromColumns' defensive
// copies would double memory and dominate load time.
//
// Every schema column must be present in the matching map with exactly rows
// entries. The caller transfers ownership: the slices must not be resized or
// mutated afterwards except through the relation API.
func FromBacking(schema Schema, rows int, numeric map[string][]float64, discrete map[string][]string) (*Relation, error) {
	if rows < 0 {
		return nil, fmt.Errorf("relation: negative row count %d", rows)
	}
	r := New(schema)
	r.rows = rows
	for _, c := range schema.cols {
		switch c.Kind {
		case Numeric:
			col, ok := numeric[c.Name]
			if !ok {
				return nil, fmt.Errorf("relation: missing numeric column %q", c.Name)
			}
			if len(col) != rows {
				return nil, fmt.Errorf("relation: column %q has %d values, want %d", c.Name, len(col), rows)
			}
			r.numeric[c.Name] = col
		case Discrete:
			col, ok := discrete[c.Name]
			if !ok {
				return nil, fmt.Errorf("relation: missing discrete column %q", c.Name)
			}
			if len(col) != rows {
				return nil, fmt.Errorf("relation: column %q has %d values, want %d", c.Name, len(col), rows)
			}
			r.discrete[c.Name] = col
		}
	}
	return r, nil
}

// AdoptIndex installs a pre-built dictionary encoding for a discrete column,
// so loaders that persist the encoding (colstore) can skip buildIndex
// entirely. The index is validated against the DiscreteIndex invariants —
// sorted unique domain, one in-range code per row — but NOT against the
// column's values; the caller vouches that Domain[Codes[i]] == column[i]
// (colstore materializes the column from the index, making that true by
// construction).
func (r *Relation) AdoptIndex(name string, ix *DiscreteIndex) error {
	col, err := r.Discrete(name)
	if err != nil {
		return err
	}
	if len(ix.Codes) != len(col) {
		return fmt.Errorf("relation: index for %q has %d codes, column has %d rows", name, len(ix.Codes), len(col))
	}
	if !sort.StringsAreSorted(ix.Domain) {
		return fmt.Errorf("relation: index for %q has unsorted domain", name)
	}
	for i := 1; i < len(ix.Domain); i++ {
		if ix.Domain[i-1] == ix.Domain[i] {
			return fmt.Errorf("relation: index for %q has duplicate domain value %q", name, ix.Domain[i])
		}
	}
	n := uint32(len(ix.Domain))
	counts := make([]uint32, n)
	for i, c := range ix.Codes {
		if c >= n {
			return fmt.Errorf("relation: index for %q has out-of-range code %d at row %d (domain size %d)", name, c, i, n)
		}
		counts[c]++
	}
	// The range check above already walked every code, so the per-code row
	// counts come for free; installing them here keeps the adopted index on
	// the same O(domain) counting fast path as a built one.
	ix.Counts = counts
	r.dmu.Lock()
	defer r.dmu.Unlock()
	if r.dindex == nil {
		r.dindex = make(map[string]*DiscreteIndex)
	}
	r.dindex[name] = ix
	return nil
}
