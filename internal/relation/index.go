package relation

import "sort"

// DiscreteIndex is the dictionary encoding of one discrete column: the sorted
// distinct values (the column's Domain) plus one uint32 code per row giving
// the value's position in that domain. Hot paths — randomized response, the
// estimator predicate scans, value counting — operate over the codes instead
// of repeated string compares and map lookups.
//
// An index is immutable once built. The relation caches it per column and
// drops the cache entry whenever the column is written through the relation
// API (SetDiscrete, MapDiscrete, AddDiscreteColumn). Code that mutates a
// column's backing slice directly — the cleaners that rewrite rows in place —
// must call InvalidateIndex afterwards.
type DiscreteIndex struct {
	// Domain holds the sorted distinct values of the column.
	Domain []string
	// Codes holds one entry per row: Codes[i] is the position of row i's
	// value in Domain, so Domain[Codes[i]] is the row's value.
	Codes []uint32
	// Counts holds one entry per domain value: Counts[c] is the number of
	// rows whose code is c. Every in-tree constructor (buildIndex,
	// AdoptIndex) materializes it, turning predicate counting into an
	// O(domain) sum instead of an O(rows) scan. A hand-assembled index may
	// leave it nil; consumers must fall back to scanning Codes then.
	Counts []uint32
}

// N returns the domain size.
func (ix *DiscreteIndex) N() int { return len(ix.Domain) }

// buildIndex dictionary-encodes one column.
func buildIndex(col []string) *DiscreteIndex {
	pos := make(map[string]uint32, 64)
	domain := make([]string, 0, 64)
	codes := make([]uint32, len(col))
	for i, v := range col {
		c, ok := pos[v]
		if !ok {
			c = uint32(len(domain))
			pos[v] = c
			domain = append(domain, v)
		}
		codes[i] = c
	}
	// Sort the domain and remap first-seen codes to sorted ranks.
	rank := make([]uint32, len(domain))
	order := make([]int, len(domain))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return domain[order[a]] < domain[order[b]] })
	sorted := make([]string, len(domain))
	for r, o := range order {
		sorted[r] = domain[o]
		rank[o] = uint32(r)
	}
	counts := make([]uint32, len(domain))
	for i, c := range codes {
		codes[i] = rank[c]
		counts[rank[c]]++
	}
	return &DiscreteIndex{Domain: sorted, Codes: codes, Counts: counts}
}

// DiscreteIndex returns the cached dictionary encoding of a discrete column,
// building it on first use. The returned index must be treated as read-only;
// it stays valid even if the column is later modified (the cache entry is
// replaced, not mutated).
//
// The cache is guarded by a mutex, so any number of goroutines may call
// DiscreteIndex (and the Domain/DomainSize/ValueCounts readers built on it)
// concurrently — the property the query server depends on. Column *writes*
// remain single-threaded: the relation is read-mostly, not a concurrent
// table.
func (r *Relation) DiscreteIndex(name string) (*DiscreteIndex, error) {
	r.dmu.Lock()
	defer r.dmu.Unlock()
	if ix, ok := r.dindex[name]; ok {
		debugCheckIndex(name, ix, r.discrete[name])
		return ix, nil
	}
	col, err := r.Discrete(name)
	if err != nil {
		return nil, err
	}
	ix := buildIndex(col)
	if r.dindex == nil {
		r.dindex = make(map[string]*DiscreteIndex)
	}
	r.dindex[name] = ix
	return ix, nil
}

// InvalidateIndex drops the cached dictionary encoding of a column. Callers
// that write a discrete column through its backing slice (rather than the
// SetDiscrete/MapDiscrete API) must invalidate before the next read of
// Domain, DomainSize, ValueCounts, or DiscreteIndex. Invalidating a column
// with no cache entry (or a numeric/unknown column) is a no-op.
func (r *Relation) InvalidateIndex(name string) {
	r.dmu.Lock()
	defer r.dmu.Unlock()
	delete(r.dindex, name)
}
