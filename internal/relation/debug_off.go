//go:build !pcdebug

package relation

// debugAssertEnabled reports whether cache-hit index verification is
// compiled in.
const debugAssertEnabled = false

// debugCheckIndex is a no-op in normal builds. Builds tagged `pcdebug`
// verify every DiscreteIndex cache hit against the column, catching cleaners
// that mutate backing slices without calling InvalidateIndex.
func debugCheckIndex(name string, ix *DiscreteIndex, col []string) {}
