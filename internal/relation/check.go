package relation

import "fmt"

// StaleIndexError reports a cached DiscreteIndex that no longer agrees with
// its column — the failure mode of a cleaner that rewrites the backing slice
// in place and forgets InvalidateIndex.
type StaleIndexError struct {
	Column string
	Detail string
}

func (e *StaleIndexError) Error() string {
	return fmt.Sprintf("relation: stale index for column %q: %s", e.Column, e.Detail)
}

// CheckIndex verifies that the cached dictionary encoding of a column (if
// any) still matches the column's values. It returns nil when there is no
// cached entry or the entry is consistent, and a *StaleIndexError otherwise.
//
// This is the runtime half of the missed-invalidation defense: cleaners that
// mutate backing slices directly must call InvalidateIndex, and builds tagged
// `pcdebug` assert consistency on every cache hit via this check.
func (r *Relation) CheckIndex(name string) error {
	r.dmu.Lock()
	ix, ok := r.dindex[name]
	r.dmu.Unlock()
	if !ok {
		return nil
	}
	col, err := r.Discrete(name)
	if err != nil {
		return err
	}
	return checkIndexAgainst(name, ix, col)
}

// checkIndexAgainst verifies one index/column pair: code vector length,
// sorted unique domain, every code in range and decoding to the row's value,
// and every domain value actually used by some row (the domain is the
// distinct set, so an unused value means the column shrank under the index).
func checkIndexAgainst(name string, ix *DiscreteIndex, col []string) error {
	stale := func(format string, args ...any) error {
		return &StaleIndexError{Column: name, Detail: fmt.Sprintf(format, args...)}
	}
	if len(ix.Codes) != len(col) {
		return stale("%d codes, %d rows", len(ix.Codes), len(col))
	}
	for i := 1; i < len(ix.Domain); i++ {
		if ix.Domain[i-1] >= ix.Domain[i] {
			return stale("domain not strictly sorted at %d", i)
		}
	}
	n := uint32(len(ix.Domain))
	counts := make([]uint32, n)
	for i, c := range ix.Codes {
		if c >= n {
			return stale("row %d has code %d, domain size %d", i, c, n)
		}
		if ix.Domain[c] != col[i] {
			return stale("row %d decodes to %q, column holds %q", i, ix.Domain[c], col[i])
		}
		counts[c]++
	}
	if ix.Counts != nil && len(ix.Counts) != int(n) {
		return stale("%d counts for %d domain values", len(ix.Counts), n)
	}
	for c, k := range counts {
		if k == 0 {
			return stale("domain value %q not present in column", ix.Domain[c])
		}
		if ix.Counts != nil && ix.Counts[c] != k {
			return stale("domain value %q has %d rows, Counts claims %d", ix.Domain[c], k, ix.Counts[c])
		}
	}
	return nil
}
