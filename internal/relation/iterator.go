package relation

import (
	"fmt"
	"io"
)

// Iterator streams a relation as a sequence of bounded row windows, so
// consumers — the out-of-core privatize pipeline, the streaming cleaners, the
// sufficient-statistics collector — can process arbitrarily large sources
// without ever holding more than one window of rows resident.
//
// Every window shares the iterator's schema. Next returns io.EOF (and a nil
// relation) once the source is exhausted; any other error is terminal. An
// iterator is single-use and not safe for concurrent Next calls.
type Iterator interface {
	// Schema returns the schema every yielded window carries.
	Schema() Schema
	// Next returns the next window of rows, or (nil, io.EOF) at the end.
	Next() (*Relation, error)
}

// Window returns a zero-copy view of rows [lo, hi): the returned relation
// shares the backing column slices (capacity-clamped), so mutating a window
// cell mutates the parent and vice versa. Cached discrete indexes are not
// shared — their codes are positions in the parent's full row space.
func (r *Relation) Window(lo, hi int) (*Relation, error) {
	if lo < 0 || hi < lo || hi > r.rows {
		return nil, fmt.Errorf("relation: window [%d,%d) out of range [0,%d]", lo, hi, r.rows)
	}
	out := &Relation{
		schema:   r.schema,
		numeric:  make(map[string][]float64, len(r.numeric)),
		discrete: make(map[string][]string, len(r.discrete)),
		rows:     hi - lo,
	}
	for name, col := range r.numeric {
		out.numeric[name] = col[lo:hi:hi]
	}
	for name, col := range r.discrete {
		out.discrete[name] = col[lo:hi:hi]
	}
	return out, nil
}

// SliceIterator adapts a resident relation to the Iterator interface by
// yielding consecutive zero-copy windows of at most `window` rows. It lets
// streaming consumers (statistics collection, streaming cleaning) run over
// in-memory relations through the same code path as out-of-core sources.
type SliceIterator struct {
	rel    *Relation
	window int
	pos    int
}

// NewSliceIterator builds an iterator over rel with the given window size
// (DefaultWindow if <= 0).
func NewSliceIterator(rel *Relation, window int) *SliceIterator {
	if window <= 0 {
		window = DefaultWindow
	}
	return &SliceIterator{rel: rel, window: window}
}

// DefaultWindow is the window size SliceIterator uses when the caller does
// not choose one.
const DefaultWindow = 4096

// Schema returns the underlying relation's schema.
func (it *SliceIterator) Schema() Schema { return it.rel.Schema() }

// Next returns the next window, or io.EOF after the last row.
func (it *SliceIterator) Next() (*Relation, error) {
	if it.pos >= it.rel.NumRows() {
		return nil, io.EOF
	}
	hi := it.pos + it.window
	if hi > it.rel.NumRows() {
		hi = it.rel.NumRows()
	}
	w, err := it.rel.Window(it.pos, hi)
	if err != nil {
		return nil, err
	}
	it.pos = hi
	return w, nil
}
