package relation

import (
	"sort"
	"testing"
)

func indexRel(t *testing.T) *Relation {
	t.Helper()
	schema := MustSchema(
		Column{Name: "city", Kind: Discrete},
		Column{Name: "temp", Kind: Numeric},
	)
	r, err := FromColumns(schema,
		map[string][]float64{"temp": {1, 2, 3, 4, 5, 6}},
		map[string][]string{"city": {"SF", "LA", "SF", "NYC", "LA", "SF"}})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDiscreteIndexRoundTrip(t *testing.T) {
	r := indexRel(t)
	ix, err := r.DiscreteIndex("city")
	if err != nil {
		t.Fatal(err)
	}
	if !sort.StringsAreSorted(ix.Domain) {
		t.Errorf("domain not sorted: %v", ix.Domain)
	}
	if ix.N() != 3 {
		t.Errorf("N() = %d, want 3", ix.N())
	}
	col := r.MustDiscrete("city")
	if len(ix.Codes) != len(col) {
		t.Fatalf("codes length %d, rows %d", len(ix.Codes), len(col))
	}
	for i, c := range ix.Codes {
		if ix.Domain[c] != col[i] {
			t.Errorf("row %d decodes to %q, want %q", i, ix.Domain[c], col[i])
		}
	}
	if _, err := r.DiscreteIndex("temp"); err == nil {
		t.Error("want error indexing a numeric column")
	}
	if _, err := r.DiscreteIndex("nope"); err == nil {
		t.Error("want error indexing an unknown column")
	}
}

func TestDiscreteIndexCached(t *testing.T) {
	r := indexRel(t)
	a, err := r.DiscreteIndex("city")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.DiscreteIndex("city")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("repeated DiscreteIndex calls should return the cached pointer")
	}
}

func TestDomainRoutesThroughIndexAndCopies(t *testing.T) {
	r := indexRel(t)
	d1, err := r.Domain("city")
	if err != nil {
		t.Fatal(err)
	}
	d1[0] = "CORRUPTED" // callers own the returned slice
	d2, err := r.Domain("city")
	if err != nil {
		t.Fatal(err)
	}
	if d2[0] == "CORRUPTED" {
		t.Error("Domain must return a copy, not the cached slice")
	}
	n, err := r.DomainSize("city")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("DomainSize = %d, want 3", n)
	}
	counts, err := r.ValueCounts("city")
	if err != nil {
		t.Fatal(err)
	}
	if counts["SF"] != 3 || counts["LA"] != 2 || counts["NYC"] != 1 {
		t.Errorf("ValueCounts = %v", counts)
	}
}

func TestWritesInvalidateIndex(t *testing.T) {
	r := indexRel(t)
	if _, err := r.DiscreteIndex("city"); err != nil {
		t.Fatal(err)
	}
	if err := r.SetDiscrete("city", 0, "Boston"); err != nil {
		t.Fatal(err)
	}
	d, err := r.Domain("city")
	if err != nil {
		t.Fatal(err)
	}
	if !contains(d, "Boston") {
		t.Errorf("SetDiscrete not reflected in Domain: %v", d)
	}

	if err := r.MapDiscrete("city", func(v string) string { return v + "!" }); err != nil {
		t.Fatal(err)
	}
	d, err = r.Domain("city")
	if err != nil {
		t.Fatal(err)
	}
	if !contains(d, "Boston!") || contains(d, "Boston") {
		t.Errorf("MapDiscrete not reflected in Domain: %v", d)
	}

	if err := r.AddDiscreteColumn("tier", []string{"a", "b", "a", "b", "a", "b"}); err != nil {
		t.Fatal(err)
	}
	d, err = r.Domain("tier")
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 2 {
		t.Errorf("new column domain = %v", d)
	}
}

func TestRawWriteNeedsExplicitInvalidate(t *testing.T) {
	r := indexRel(t)
	ix, err := r.DiscreteIndex("city")
	if err != nil {
		t.Fatal(err)
	}
	col := r.MustDiscrete("city")
	col[0] = "Chicago" // backing-slice write bypasses the cache
	if !debugAssertEnabled {
		// In normal builds the stale entry is served as-is; under pcdebug the
		// same read panics (covered by TestDebugAssertStaleIndex).
		stale, err := r.DiscreteIndex("city")
		if err != nil {
			t.Fatal(err)
		}
		if stale != ix {
			t.Fatal("raw writes are not expected to refresh the cache by themselves")
		}
	}
	r.InvalidateIndex("city")
	fresh, err := r.DiscreteIndex("city")
	if err != nil {
		t.Fatal(err)
	}
	if fresh == ix {
		t.Error("InvalidateIndex should force a rebuild")
	}
	if got := fresh.Domain[fresh.Codes[0]]; got != "Chicago" {
		t.Errorf("rebuilt index decodes row 0 to %q", got)
	}
}

func TestCloneSharesIndexUntilInvalidated(t *testing.T) {
	r := indexRel(t)
	orig, err := r.DiscreteIndex("city")
	if err != nil {
		t.Fatal(err)
	}
	c := r.Clone()
	shared, err := c.DiscreteIndex("city")
	if err != nil {
		t.Fatal(err)
	}
	if shared != orig {
		t.Error("a clone's identical column should reuse the immutable cached index")
	}
	// Invalidating the clone must not disturb the original's cache.
	c.InvalidateIndex("city")
	still, err := r.DiscreteIndex("city")
	if err != nil {
		t.Fatal(err)
	}
	if still != orig {
		t.Error("invalidating a clone's entry must not evict the original's")
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
