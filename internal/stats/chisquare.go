package stats

import (
	"fmt"
	"math"
)

// ChiSquareSurvival returns P(X > x) for a chi-square variable X with df
// degrees of freedom — the p-value of an observed chi-square statistic x.
// It is the regularized upper incomplete gamma Q(df/2, x/2).
func ChiSquareSurvival(x float64, df int) (float64, error) {
	if df <= 0 {
		return 0, fmt.Errorf("stats: chi-square needs df > 0, got %d", df)
	}
	if math.IsNaN(x) {
		return 0, fmt.Errorf("stats: chi-square statistic is NaN")
	}
	if x <= 0 {
		return 1, nil
	}
	return gammaQ(float64(df)/2, x/2), nil
}

// gammaQ is the regularized upper incomplete gamma function Q(a, x) =
// Γ(a,x)/Γ(a), for a > 0, x >= 0. The series converges fast for x < a+1 and
// the continued fraction for x >= a+1 (Numerical Recipes 6.2).
func gammaQ(a, x float64) float64 {
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinuedFraction(a, x)
}

// gammaPSeries evaluates P(a, x) by its power series.
func gammaPSeries(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-15
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQContinuedFraction evaluates Q(a, x) by modified Lentz's method.
func gammaQContinuedFraction(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-15
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
