// Package statcheck is the shared Monte-Carlo harness behind the
// statistical regression suites (internal/privacy and internal/estimator).
// A suite is a table of rows — one per (mechanism × estimator × regime)
// cell — and every row runs the same seeded protocol, so the assertion
// rules live in exactly one place:
//
//   - Unbiasedness (4-SE rule): the Monte-Carlo mean over K pinned seeds
//     must land within 4 standard errors of the analytic truth, the
//     standard error taken from the empirical spread. The tolerance scales
//     with the mechanism's own noise instead of being hand-picked, and the
//     pinned seeds make a failure a regression in the estimator math, not
//     flakiness.
//   - Coverage bands: a row may assert its confidence interval's empirical
//     coverage against [Min, Max]. Min-only bands suit deliberately
//     conservative intervals (the paper's 2x factors), two-sided bands pin
//     calibrated intervals. Coverage is asserted only at full trial depth:
//     at smoke depth the band granularity exceeds its width.
//   - Power (WantBias): an inverted row proves the suite can see a broken
//     channel — the Monte-Carlo mean must land MORE than 4 SE from truth.
//     Without power rows, a harness bug that zeroes the estimates' spread
//     would turn every unbiasedness check vacuous.
//
// The PC_STAT_TRIALS environment variable caps every row's trial count
// (`make stat-smoke` sets it for the pre-commit path); unset or larger
// than a row's own count, the row runs at full depth (`make stat-suite`).
package statcheck

import (
	"math"
	"os"
	"strconv"
	"testing"
)

// TrialsEnv caps per-row Monte-Carlo trial counts when set to a positive
// integer. See Trials.
const TrialsEnv = "PC_STAT_TRIALS"

// Trials returns the trial count a row should run: full, unless TrialsEnv
// is set to a smaller positive integer.
func Trials(full int) int {
	if s := os.Getenv(TrialsEnv); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 && n < full {
			return n
		}
	}
	return full
}

// Sample is one seeded run's estimate and whether its confidence interval
// covered the truth.
type Sample struct {
	Value   float64
	Covered bool
}

// Summary reduces a row's samples to the quantities the rules assert on.
type Summary struct {
	Mean     float64
	StdErr   float64
	Coverage float64
	N        int
}

// Summarize computes the Monte-Carlo mean, its standard error (sample
// standard deviation over sqrt(K)), and the empirical coverage rate.
func Summarize(samples []Sample) Summary {
	k := float64(len(samples))
	var sum float64
	covered := 0
	for _, s := range samples {
		sum += s.Value
		if s.Covered {
			covered++
		}
	}
	mean := sum / k
	var ss float64
	for _, s := range samples {
		d := s.Value - mean
		ss += d * d
	}
	stderr := 0.0
	if len(samples) > 1 {
		stderr = math.Sqrt(ss/(k-1)) / math.Sqrt(k)
	}
	return Summary{Mean: mean, StdErr: stderr, Coverage: float64(covered) / k, N: len(samples)}
}

// Band is an empirical-coverage assertion: Coverage must be >= Min, and,
// when Max > 0, <= Max. The zero Band asserts nothing.
type Band struct {
	Min, Max float64
}

// Row is one cell of a statistical suite.
type Row struct {
	// Name labels the subtest, conventionally "mechanism/estimator[/regime]".
	Name string
	// Truth is the analytic value the Monte-Carlo mean is compared to.
	Truth float64
	// Trials is the full-depth trial count (reducible via PC_STAT_TRIALS).
	Trials int
	// Seed is the base seed; trial i runs with Seed+i+1, so rows with
	// distinct bases never share a privatization stream.
	Seed int64
	// Cover asserts the empirical CI coverage (full depth only).
	Cover Band
	// Slack is an extra systematic tolerance added to the 4-SE rule, for
	// estimators whose target is only defined up to a discretization (a
	// binned quantile resolves to one bin width: the zero-clamp on inverted
	// bin counts biases the inverse-CDF within a bin, never across a well
	// separated one). Leave zero for linear estimators — they owe exact
	// unbiasedness.
	Slack float64
	// WantBias inverts the unbiasedness rule: the row passes only if the
	// mean is decisively FAR from Truth (a power check).
	WantBias bool
	// Run performs one seeded trial.
	Run func(t *testing.T, seed int64) Sample
}

// Run executes each row as a subtest. The whole table is skipped under
// -short: every row privatizes K times.
func Run(t *testing.T, rows []Row) {
	t.Helper()
	if testing.Short() {
		t.Skip("statistical suite: seeded Monte-Carlo trials; skipped with -short")
	}
	for _, row := range rows {
		row := row
		t.Run(row.Name, func(t *testing.T) { runRow(t, row) })
	}
}

func runRow(t *testing.T, row Row) {
	t.Helper()
	k := Trials(row.Trials)
	samples := make([]Sample, 0, k)
	for i := 0; i < k; i++ {
		samples = append(samples, row.Run(t, row.Seed+int64(i)+1))
	}
	if t.Failed() {
		return
	}
	s := Summarize(samples)
	// The epsilon floor keeps degenerate rows (zero spread, e.g. b = 0
	// deterministic numerics) from demanding bit-exact float equality.
	tol := 4*s.StdErr + row.Slack + 1e-9*math.Max(1, math.Abs(row.Truth))
	dist := math.Abs(s.Mean - row.Truth)
	if row.WantBias {
		if dist <= tol {
			t.Errorf("%s: Monte-Carlo mean %v is within 4 SE (%.3g) of truth %v under a broken channel: the suite has no power to detect this regression",
				row.Name, s.Mean, tol, row.Truth)
		}
		return
	}
	if dist > tol {
		t.Errorf("%s: Monte-Carlo mean %v is %.3g from truth %v (> 4 SE = %.3g): estimator is biased",
			row.Name, s.Mean, dist, row.Truth, tol)
	}
	if row.Cover.Min > 0 {
		if k < row.Trials {
			t.Logf("%s: coverage band skipped at reduced depth %d/%d trials", row.Name, k, row.Trials)
			return
		}
		if s.Coverage < row.Cover.Min {
			t.Errorf("%s: empirical CI coverage = %v, want >= %v", row.Name, s.Coverage, row.Cover.Min)
		}
		if row.Cover.Max > 0 && s.Coverage > row.Cover.Max {
			t.Errorf("%s: empirical CI coverage = %v, want <= %v (interval is degenerately wide)", row.Name, s.Coverage, row.Cover.Max)
		}
	}
}

// PValueRow is one cell of a goodness-of-fit suite: K seeded p-values
// against a distributional null (e.g. chi-square of privatized frequencies
// against the channel expectation).
type PValueRow struct {
	Name   string
	Trials int
	Seed   int64
	// Run returns one seeded trial's p-value under the row's null.
	Run func(t *testing.T, seed int64) float64
	// Power inverts the rule: every p-value must be below 1e-6, proving
	// the statistic rejects a deliberately wrong null.
	Power bool
}

// RunPValues executes each row as a subtest. Under the null each p-value is
// Uniform(0,1); with pinned seeds the observed values are constants, and
// the thresholds document how far from uniform a regression would have to
// push them: no p-value below 1e-4, and at most half below 0.05.
func RunPValues(t *testing.T, rows []PValueRow) {
	t.Helper()
	if testing.Short() {
		t.Skip("statistical suite: seeded goodness-of-fit trials; skipped with -short")
	}
	for _, row := range rows {
		row := row
		t.Run(row.Name, func(t *testing.T) {
			k := Trials(row.Trials)
			low := 0
			for i := 0; i < k; i++ {
				pv := row.Run(t, row.Seed+int64(i)+1)
				if row.Power {
					if pv > 1e-6 {
						t.Errorf("trial %d: p-value %v against a wrong null: statistic has no power", i+1, pv)
					}
					continue
				}
				if pv < 1e-4 {
					t.Errorf("trial %d: p-value %v < 1e-4: distribution does not match the null", i+1, pv)
				}
				if pv < 0.05 {
					low++
				}
			}
			if !row.Power && low > k/2 {
				t.Errorf("%d/%d p-values below 0.05: distribution systematically off the null", low, k)
			}
		})
	}
}
