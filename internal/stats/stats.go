// Package stats provides the statistical substrate used throughout
// PrivateClean: descriptive statistics, normal quantiles for CLT confidence
// intervals, a Laplace sampler for the Laplace mechanism, and relative-error
// metrics used by the experiment harness.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Rand is the randomness source the Laplace sampler needs. *math/rand.Rand
// satisfies it; tests can substitute deterministic sources.
type Rand interface {
	Float64() float64
}

// ErrEmpty is returned by descriptive statistics over empty inputs.
var ErrEmpty = errors.New("stats: empty input")

// Sum returns the sum of xs, skipping NaN entries.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		if !math.IsNaN(x) {
			s += x
		}
	}
	return s
}

// Mean returns the arithmetic mean of xs, skipping NaN entries.
func Mean(xs []float64) (float64, error) {
	var s float64
	n := 0
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		s += x
		n++
	}
	if n == 0 {
		return 0, ErrEmpty
	}
	return s / float64(n), nil
}

// Variance returns the population variance of xs, skipping NaN entries.
func Variance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var ss float64
	n := 0
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		d := x - m
		ss += d * d
		n++
	}
	return ss / float64(n), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// MinMax returns the minimum and maximum of xs, skipping NaN entries.
func MinMax(xs []float64) (lo, hi float64, err error) {
	first := true
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		if first {
			lo, hi = x, x
			first = false
			continue
		}
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if first {
		return 0, 0, ErrEmpty
	}
	return lo, hi, nil
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. NaN entries are skipped.
func Quantile(xs []float64, q float64) (float64, error) {
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	clean := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			clean = append(clean, x)
		}
	}
	if len(clean) == 0 {
		return 0, ErrEmpty
	}
	sort.Float64s(clean)
	if len(clean) == 1 {
		return clean[0], nil
	}
	pos := q * float64(len(clean)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return clean[lo], nil
	}
	frac := pos - float64(lo)
	return clean[lo]*(1-frac) + clean[hi]*frac, nil
}

// HistQuantile returns the q-quantile of a binned distribution by inverting
// its cumulative histogram: counts[k] is the mass on [edges[k], edges[k+1])
// and the returned value interpolates linearly inside the bin the inverse
// CDF crosses (mass uniform within a bin). See HistQuantileBin for the
// variant that also reports which bin that is.
func HistQuantile(edges, counts []float64, q float64) (float64, error) {
	x, _, err := HistQuantileBin(edges, counts, q)
	return x, err
}

// HistQuantileBin is HistQuantile plus the index of the crossed bin, which
// the delta-method confidence interval needs (the local density is
// counts[bin]/width(bin)). Empty bins are skipped, so q = 0 lands on the
// left edge of the first non-empty bin and q = 1 on the right edge of the
// last. Counts must be finite and >= 0 (clamp estimated counts before
// calling); an all-zero histogram returns ErrEmpty.
func HistQuantileBin(edges, counts []float64, q float64) (float64, int, error) {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	if len(counts) == 0 || len(edges) != len(counts)+1 {
		return 0, 0, fmt.Errorf("stats: histogram needs len(edges) == len(counts)+1 >= 2, got %d edges over %d counts", len(edges), len(counts))
	}
	total := 0.0
	for k, c := range counts {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return 0, 0, fmt.Errorf("stats: bin %d count %v must be finite and >= 0", k, c)
		}
		if edges[k+1] <= edges[k] {
			return 0, 0, fmt.Errorf("stats: edges must be strictly increasing (edge %d = %v, edge %d = %v)", k, edges[k], k+1, edges[k+1])
		}
		total += c
	}
	if total == 0 {
		return 0, 0, ErrEmpty
	}
	target := q * total
	cum, last := 0.0, -1
	for k, c := range counts {
		if c == 0 {
			continue
		}
		if cum+c >= target {
			frac := (target - cum) / c
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return edges[k] + frac*(edges[k+1]-edges[k]), k, nil
		}
		cum += c
		last = k
	}
	// Floating-point shortfall at q near 1: the cumulative sum came up a few
	// ulps short of target. The answer is the right edge of the last
	// non-empty bin.
	return edges[last+1], last, nil
}

// ZScore returns z such that P(|Z| <= z) = confidence for a standard normal
// Z; e.g. ZScore(0.95) ~= 1.96. Confidence must be in (0, 1).
func ZScore(confidence float64) (float64, error) {
	if confidence <= 0 || confidence >= 1 {
		return 0, fmt.Errorf("stats: confidence %v out of (0,1)", confidence)
	}
	return math.Sqrt2 * math.Erfinv(confidence), nil
}

// NormalCDF returns P(Z <= x) for a standard normal Z.
func NormalCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// Laplace draws one sample from the Laplace(mu, b) distribution with density
// (1/2b) exp(-|x-mu|/b), via inverse-CDF sampling. b must be positive;
// b == 0 returns mu exactly (the no-noise degenerate case).
func Laplace(rng Rand, mu, b float64) float64 {
	if b == 0 {
		return mu
	}
	// u uniform on (-1/2, 1/2); avoid u == -1/2 exactly so Log stays finite.
	u := rng.Float64() - 0.5
	for u == -0.5 {
		u = rng.Float64() - 0.5
	}
	sign := 1.0
	if u < 0 {
		sign = -1.0
	}
	return mu - b*sign*math.Log(1-2*math.Abs(u))
}

// LaplaceVariance returns the variance 2b^2 of a Laplace(mu, b) sample.
func LaplaceVariance(b float64) float64 { return 2 * b * b }

// RelativeError returns |got - want| / |want|. When want == 0, it returns 0
// if got is also 0 and +Inf otherwise (the convention used when averaging
// error percentages in the experiment harness — such points are excluded).
func RelativeError(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// MeanFinite averages the finite entries of xs; it returns ErrEmpty when no
// finite entries exist. Used to aggregate per-trial error percentages where
// degenerate trials produce Inf/NaN.
func MeanFinite(xs []float64) (float64, error) {
	var s float64
	n := 0
	for _, x := range xs {
		if math.IsInf(x, 0) || math.IsNaN(x) {
			continue
		}
		s += x
		n++
	}
	if n == 0 {
		return 0, ErrEmpty
	}
	return s / float64(n), nil
}
