package stats

import (
	"math"
	"testing"
)

func TestChiSquareSurvivalKnownQuantiles(t *testing.T) {
	// Critical values from standard chi-square tables: Q(x, df) = alpha.
	cases := []struct {
		x     float64
		df    int
		alpha float64
	}{
		{3.841, 1, 0.05},
		{6.635, 1, 0.01},
		{5.991, 2, 0.05},
		{7.815, 3, 0.05},
		{9.488, 4, 0.05},
		{18.307, 10, 0.05},
		{28.869, 18, 0.05},
	}
	for _, c := range cases {
		got, err := ChiSquareSurvival(c.x, c.df)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.alpha) > 5e-4 {
			t.Errorf("Q(%v, df=%d) = %v, want ~%v", c.x, c.df, got, c.alpha)
		}
	}
}

func TestChiSquareSurvivalDF2Closed(t *testing.T) {
	// With df=2 the survival function is exp(-x/2) in closed form.
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10, 25, 60} {
		got, err := ChiSquareSurvival(x, 2)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Exp(-x / 2)
		if math.Abs(got-want) > 1e-12*math.Max(want, 1e-12) && math.Abs(got-want) > 1e-14 {
			t.Errorf("Q(%v, 2) = %v, want %v", x, got, want)
		}
	}
}

func TestChiSquareSurvivalEdges(t *testing.T) {
	if got, err := ChiSquareSurvival(0, 3); err != nil || got != 1 {
		t.Fatalf("Q(0, 3) = %v, %v; want 1", got, err)
	}
	if got, err := ChiSquareSurvival(-2, 3); err != nil || got != 1 {
		t.Fatalf("Q(-2, 3) = %v, %v; want 1", got, err)
	}
	if _, err := ChiSquareSurvival(1, 0); err == nil {
		t.Fatal("want error for df = 0")
	}
	if _, err := ChiSquareSurvival(math.NaN(), 3); err == nil {
		t.Fatal("want error for NaN statistic")
	}
	// Monotone decreasing in x.
	prev := 1.0
	for x := 0.5; x < 40; x += 0.5 {
		q, err := ChiSquareSurvival(x, 5)
		if err != nil {
			t.Fatal(err)
		}
		if q > prev {
			t.Fatalf("Q not monotone at x=%v: %v > %v", x, q, prev)
		}
		prev = q
	}
}
