package stats

import (
	"errors"
	"math"
	"testing"
)

// histOf bins xs into n uniform bins over [lo, hi) with the right edge
// closed, the same convention the release and the collector use.
func histOf(xs []float64, lo, hi float64, n int) (edges, counts []float64) {
	edges = make([]float64, n+1)
	for i := range edges {
		edges[i] = lo + (hi-lo)*float64(i)/float64(n)
	}
	counts = make([]float64, n)
	for _, x := range xs {
		k := int(float64(n) * (x - lo) / (hi - lo))
		if k < 0 {
			k = 0
		}
		if k >= n {
			k = n - 1
		}
		counts[k]++
	}
	return edges, counts
}

func TestHistQuantileUniformWithinBin(t *testing.T) {
	edges := []float64{0, 10, 20}
	counts := []float64{10, 10}
	for _, tc := range []struct{ q, want float64 }{
		{0, 0}, {0.25, 5}, {0.5, 10}, {0.75, 15}, {1, 20},
	} {
		got, err := HistQuantile(edges, counts, tc.q)
		if err != nil {
			t.Fatalf("q=%v: %v", tc.q, err)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("q=%v: got %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestHistQuantileSkipsEmptyBins(t *testing.T) {
	// Mass only in the second and fourth bins: the inverse CDF must never
	// land inside an empty bin, and q = 0 / q = 1 must snap to the edges of
	// the first/last non-empty bin.
	edges := []float64{0, 1, 2, 3, 4, 5}
	counts := []float64{0, 4, 0, 4, 0}
	lo, bin, err := HistQuantileBin(edges, counts, 0)
	if err != nil || lo != 1 || bin != 1 {
		t.Fatalf("q=0: got (%v, %d, %v), want (1, 1, nil)", lo, bin, err)
	}
	hi, bin, err := HistQuantileBin(edges, counts, 1)
	if err != nil || hi != 4 || bin != 3 {
		t.Fatalf("q=1: got (%v, %d, %v), want (4, 3, nil)", hi, bin, err)
	}
	mid, bin, err := HistQuantileBin(edges, counts, 0.5)
	if err != nil || mid != 2 || bin != 1 {
		t.Fatalf("q=0.5: got (%v, %d, %v), want (2, 1, nil)", mid, bin, err)
	}
	for _, q := range []float64{0.1, 0.3, 0.6, 0.9} {
		x, _, err := HistQuantileBin(edges, counts, q)
		if err != nil {
			t.Fatalf("q=%v: %v", q, err)
		}
		if x > 2 && x < 3 {
			t.Errorf("q=%v: quantile %v landed inside the empty bin [2,3)", q, x)
		}
	}
}

func TestHistQuantileAllMassOneBin(t *testing.T) {
	edges := []float64{0, 1, 2, 3}
	counts := []float64{0, 7, 0}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		x, bin, err := HistQuantileBin(edges, counts, q)
		if err != nil {
			t.Fatalf("q=%v: %v", q, err)
		}
		if bin != 1 || x < 1 || x > 2 {
			t.Errorf("q=%v: got (%v, %d), want inside [1,2]", q, x, bin)
		}
	}
}

func TestHistQuantileRejectsBadInput(t *testing.T) {
	good := []float64{0, 1, 2}
	cases := []struct {
		name   string
		edges  []float64
		counts []float64
		q      float64
	}{
		{"negative count", good, []float64{3, -1}, 0.5},
		{"NaN count", good, []float64{3, math.NaN()}, 0.5},
		{"Inf count", good, []float64{3, math.Inf(1)}, 0.5},
		{"non-increasing edges", []float64{0, 1, 1}, []float64{1, 1}, 0.5},
		{"decreasing edges", []float64{0, 2, 1}, []float64{1, 1}, 0.5},
		{"length mismatch", good, []float64{1}, 0.5},
		{"no bins", []float64{0}, nil, 0.5},
		{"q below 0", good, []float64{1, 1}, -0.1},
		{"q above 1", good, []float64{1, 1}, 1.1},
		{"q NaN", good, []float64{1, 1}, math.NaN()},
	}
	for _, tc := range cases {
		if _, _, err := HistQuantileBin(tc.edges, tc.counts, tc.q); err == nil {
			t.Errorf("%s: want error, got none", tc.name)
		}
	}
	if _, _, err := HistQuantileBin(good, []float64{0, 0}, 0.5); !errors.Is(err, ErrEmpty) {
		t.Errorf("all-zero histogram: want ErrEmpty, got %v", err)
	}
}

// TestHistMedianConvergesWithBins is the discretization property: as the
// bins shrink, the binned median of a fixed sample approaches the exact
// sample median, with error bounded by one bin width at every resolution.
func TestHistMedianConvergesWithBins(t *testing.T) {
	// A lumpy, asymmetric sample over [0, 100).
	var xs []float64
	for i := 0; i < 500; i++ {
		xs = append(xs, float64(i%37)+0.5)
	}
	for i := 0; i < 300; i++ {
		xs = append(xs, 50+float64(i%23)+0.25)
	}
	exact, err := Quantile(xs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	prevErr := math.Inf(1)
	for _, n := range []int{4, 16, 64, 256, 1024} {
		edges, counts := histOf(xs, 0, 100, n)
		got, err := HistQuantile(edges, counts, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		width := 100.0 / float64(n)
		e := math.Abs(got - exact)
		if e > width {
			t.Errorf("bins=%d: |binned median %v - exact %v| = %v exceeds bin width %v", n, got, exact, e, width)
		}
		// Convergence need not be strictly monotone bin-to-bin, but it must
		// never regress past the previous resolution's bin-width bound.
		if e > prevErr+width {
			t.Errorf("bins=%d: error %v regressed past previous resolution's %v", n, e, prevErr)
		}
		prevErr = e
	}
	if prevErr > 0.1 {
		t.Errorf("finest resolution error %v, want < 0.1", prevErr)
	}
}
