package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSumSkipsNaN(t *testing.T) {
	got := Sum([]float64{1, math.NaN(), 2})
	if got != 3 {
		t.Fatalf("Sum = %v, want 3", got)
	}
}

func TestMean(t *testing.T) {
	got, err := Mean([]float64{2, 4, math.NaN(), 6})
	if err != nil || got != 4 {
		t.Fatalf("Mean = %v, %v", got, err)
	}
	if _, err := Mean(nil); err != ErrEmpty {
		t.Fatalf("Mean(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Mean([]float64{math.NaN()}); err != ErrEmpty {
		t.Fatalf("Mean(NaN) err = %v, want ErrEmpty", err)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	v, err := Variance([]float64{1, 1, 1})
	if err != nil || v != 0 {
		t.Fatalf("Variance = %v, %v", v, err)
	}
	v, err = Variance([]float64{0, 2})
	if err != nil || v != 1 {
		t.Fatalf("Variance = %v, want 1", v)
	}
	sd, err := StdDev([]float64{0, 2})
	if err != nil || sd != 1 {
		t.Fatalf("StdDev = %v, want 1", sd)
	}
	if _, err := Variance(nil); err == nil {
		t.Fatal("want error for empty variance")
	}
	if _, err := StdDev(nil); err == nil {
		t.Fatal("want error for empty stddev")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, math.NaN(), -1, 7})
	if err != nil || lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v,%v,%v", lo, hi, err)
	}
	if _, _, err := MinMax([]float64{math.NaN()}); err != ErrEmpty {
		t.Fatalf("MinMax err = %v", err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	q, err := Quantile(xs, 0.5)
	if err != nil || q != 3 {
		t.Fatalf("median = %v, %v", q, err)
	}
	q, err = Quantile(xs, 0)
	if err != nil || q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	q, err = Quantile(xs, 1)
	if err != nil || q != 5 {
		t.Fatalf("q1 = %v", q)
	}
	q, err = Quantile([]float64{1, 2}, 0.25)
	if err != nil || q != 1.25 {
		t.Fatalf("interpolated quantile = %v", q)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("want out-of-range error")
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Fatalf("err = %v", err)
	}
	if q, err := Quantile([]float64{7}, 0.9); err != nil || q != 7 {
		t.Fatalf("singleton quantile = %v, %v", q, err)
	}
}

func TestZScore(t *testing.T) {
	z, err := ZScore(0.95)
	if err != nil || math.Abs(z-1.959964) > 1e-4 {
		t.Fatalf("ZScore(0.95) = %v, %v", z, err)
	}
	z, err = ZScore(0.99)
	if err != nil || math.Abs(z-2.575829) > 1e-4 {
		t.Fatalf("ZScore(0.99) = %v", z)
	}
	for _, bad := range []float64{0, 1, -0.5, 1.5} {
		if _, err := ZScore(bad); err == nil {
			t.Fatalf("ZScore(%v) should fail", bad)
		}
	}
}

func TestNormalCDF(t *testing.T) {
	if math.Abs(NormalCDF(0)-0.5) > 1e-12 {
		t.Fatalf("CDF(0) = %v", NormalCDF(0))
	}
	if math.Abs(NormalCDF(1.96)-0.975) > 1e-3 {
		t.Fatalf("CDF(1.96) = %v", NormalCDF(1.96))
	}
}

// ZScore and NormalCDF are inverses: P(|Z| <= ZScore(c)) == c.
func TestZScoreCDFInverseProperty(t *testing.T) {
	f := func(u float64) bool {
		c := math.Mod(math.Abs(u), 0.98) + 0.01 // confidence in (0.01, 0.99)
		z, err := ZScore(c)
		if err != nil {
			return false
		}
		got := NormalCDF(z) - NormalCDF(-z)
		return math.Abs(got-c) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLaplaceZeroScale(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := Laplace(rng, 5, 0); got != 5 {
		t.Fatalf("Laplace(mu,0) = %v, want mu", got)
	}
}

func TestLaplaceMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 200000
	const mu, b = 3.0, 2.0
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := Laplace(rng, mu, b)
		sum += x
		sumSq += (x - mu) * (x - mu)
	}
	mean := sum / n
	variance := sumSq / n
	if math.Abs(mean-mu) > 0.05 {
		t.Fatalf("sample mean = %v, want ~%v", mean, mu)
	}
	if math.Abs(variance-LaplaceVariance(b)) > 0.3 {
		t.Fatalf("sample variance = %v, want ~%v", variance, LaplaceVariance(b))
	}
}

func TestLaplaceMedianIsMu(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 100001
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = Laplace(rng, -1, 3)
	}
	med, err := Quantile(xs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(med-(-1)) > 0.08 {
		t.Fatalf("median = %v, want ~-1", med)
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(11, 10); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelativeError = %v", got)
	}
	if got := RelativeError(0, 0); got != 0 {
		t.Fatalf("RelativeError(0,0) = %v", got)
	}
	if got := RelativeError(1, 0); !math.IsInf(got, 1) {
		t.Fatalf("RelativeError(1,0) = %v", got)
	}
	if got := RelativeError(-11, -10); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("negative want = %v", got)
	}
}

func TestMeanFinite(t *testing.T) {
	got, err := MeanFinite([]float64{1, math.Inf(1), 3, math.NaN()})
	if err != nil || got != 2 {
		t.Fatalf("MeanFinite = %v, %v", got, err)
	}
	if _, err := MeanFinite([]float64{math.Inf(1)}); err != ErrEmpty {
		t.Fatalf("err = %v", err)
	}
}

// Property: RelativeError is scale-invariant for positive scales.
func TestRelativeErrorScaleInvariant(t *testing.T) {
	f := func(got, want, scale float64) bool {
		if want == 0 || math.IsNaN(got) || math.IsNaN(want) || math.IsNaN(scale) {
			return true
		}
		if math.IsInf(got, 0) || math.IsInf(want, 0) || math.IsInf(scale, 0) {
			return true
		}
		// Clamp magnitudes so got*s and want*s cannot overflow.
		got = math.Mod(got, 1e6)
		want = math.Mod(want, 1e6)
		if want == 0 {
			return true
		}
		s := math.Mod(math.Abs(scale), 1e3) + 1
		a := RelativeError(got, want)
		b := RelativeError(got*s, want*s)
		if math.IsInf(a, 0) || a == 0 {
			return true
		}
		return math.Abs(a-b)/a < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
