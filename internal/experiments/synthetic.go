package experiments

import (
	"fmt"
	"math/rand"

	"privateclean/internal/cleaning"
	"privateclean/internal/estimator"
	"privateclean/internal/privacy"
	"privateclean/internal/provenance"
	"privateclean/internal/relation"
	"privateclean/internal/stats"
	"privateclean/internal/workload"
)

// Series names shared by the figures.
const (
	// SeriesDirect is the nominal query result on the cleaned private
	// relation, with no reweighting (Section 8.1's Direct).
	SeriesDirect = "Direct"
	// SeriesPrivateClean is the bias-corrected estimator with provenance.
	SeriesPrivateClean = "PrivateClean"
	// SeriesPCNoProv is the Section 5 bias correction applied *without*
	// provenance: the predicate's selectivity l is matched against the
	// released dirty domain, so cleaning-induced merges and renames are
	// invisible to it. Its excess bias over PrivateClean is exactly the
	// paper's merge term p(l/N - l'/N') (Section 6.1).
	SeriesPCNoProv = "PC-NoProv"
	// SeriesPCWeighted / SeriesPCUnweighted are the Figure 7 ablation:
	// weighted vs unweighted provenance cuts.
	SeriesPCWeighted   = "PC-W"
	SeriesPCUnweighted = "PC-U"
	// SeriesDirtyNoPriv is the reference of Figures 10/11: the query on the
	// original dirty relation with no cleaning and no privacy.
	SeriesDirtyNoPriv = "Dirty(no privacy)"
)

// trialParams bundles everything one synthetic trial needs.
type trialParams struct {
	cfg      Config
	p, b     float64
	z        float64
	n        int
	selFrac  float64 // predicate selectivity as a fraction of distinct values; 0 means use cfg.L values
	corr     float64 // category/value correlation
	merge    float64 // fraction of distinct values the cleaner merges into others
	rename   float64 // fraction of distinct values the cleaner renames to fresh values
	useClean bool    // apply the RandomValueMap cleaner
}

func (t trialParams) withDefaults(cfg Config) trialParams {
	t.cfg = cfg
	if t.p == 0 {
		t.p = cfg.P
	}
	if t.b == 0 {
		t.b = cfg.B
	}
	if t.z == 0 {
		t.z = cfg.Z
	}
	if t.n == 0 {
		t.n = cfg.N
	}
	return t
}

// syntheticTrial runs one randomized instance: generate R (and optionally a
// random cleaner), privatize, clean both R and V identically, run one random
// count query and one random sum query, and report the relative errors of
// Direct and PrivateClean against ground truth on R_clean.
func syntheticTrial(rng *rand.Rand, t trialParams, col *collector) error {
	r, err := workload.Synthetic(rng, workload.SyntheticConfig{
		S: t.cfg.S, N: t.n, Z: t.z, Correlation: t.corr,
	})
	if err != nil {
		return err
	}

	var ops []cleaning.Op
	if t.useClean {
		domain, err := r.Domain("category")
		if err != nil {
			return err
		}
		mapping, err := workload.RandomValueMap(rng, domain, t.merge, t.rename)
		if err != nil {
			return err
		}
		ops = append(ops, cleaning.DictionaryMerge{Attr: "category", Mapping: mapping})
	}

	// Ground truth: the same cleaning applied to the non-private relation.
	rClean := r.Clone()
	if err := cleaning.Apply(&cleaning.Context{Rel: rClean}, ops...); err != nil {
		return err
	}

	// Private view and its cleaned version, with provenance.
	v, meta, err := privacy.Privatize(rng, r, privacy.Uniform(r.Schema(), t.p, t.b))
	if err != nil {
		return err
	}
	analysis := newAnalysis(v, meta)
	if err := analysis.clean(ops...); err != nil {
		return err
	}

	// Random query: l distinct values drawn from the cleaned domain.
	cleanDomain, err := rClean.Domain("category")
	if err != nil {
		return err
	}
	l := t.cfg.L
	if t.selFrac > 0 {
		l = int(t.selFrac * float64(len(cleanDomain)))
		if l < 1 {
			l = 1
		}
	}
	pred := estimator.In("category", pickValues(rng, cleanDomain, l)...)

	return recordQueryErrors(col, analysis, rClean, "value", pred, false)
}

// analysis is a lightweight analyst: a cleaned private relation plus the
// state the estimators need. (The core package offers the full facade; the
// harness uses this slimmer form to also expose the PC-U ablation.)
type analysis struct {
	rel  *relation.Relation
	meta *privacy.ViewMeta
	est  *estimator.Estimator
}

func newAnalysis(v *relation.Relation, meta *privacy.ViewMeta) *analysis {
	a := &analysis{rel: v.Clone(), meta: meta}
	a.est = &estimator.Estimator{Meta: meta, Prov: nil}
	return a
}

func (a *analysis) clean(ops ...cleaning.Op) error {
	if len(ops) == 0 {
		return nil
	}
	if a.est.Prov == nil {
		a.est.Prov = provenance.NewStore()
	}
	return cleaning.Apply(&cleaning.Context{Rel: a.rel, Prov: a.est.Prov, Meta: a.meta}, ops...)
}

// recordQueryErrors evaluates one count query and one sum query with every
// estimator and records relative errors. When withUnweighted is set, the
// PC-U ablation series is recorded too.
func recordQueryErrors(col *collector, a *analysis, rClean *relation.Relation, agg string, pred estimator.Predicate, withUnweighted bool) error {
	truthCount, err := estimator.DirectCount(rClean, pred)
	if err != nil {
		return err
	}
	truthSum, err := estimator.DirectSum(rClean, agg, pred)
	if err != nil {
		return err
	}

	directCount, err := estimator.DirectCount(a.rel, pred)
	if err != nil {
		return err
	}
	directSum, err := estimator.DirectSum(a.rel, agg, pred)
	if err != nil {
		return err
	}
	pcCount, err := a.est.Count(a.rel, pred)
	if err != nil {
		return err
	}
	pcSum, err := a.est.Sum(a.rel, agg, pred)
	if err != nil {
		return err
	}

	col.add("count/"+SeriesDirect, stats.RelativeError(directCount, truthCount))
	col.add("count/"+SeriesPrivateClean, stats.RelativeError(pcCount.Value, truthCount))
	col.add("sum/"+SeriesDirect, stats.RelativeError(directSum, truthSum))
	col.add("sum/"+SeriesPrivateClean, stats.RelativeError(pcSum.Value, truthSum))

	if a.est.Prov != nil {
		// Cleaning happened: also record the provenance-free correction.
		np := &estimator.Estimator{Meta: a.est.Meta, Confidence: a.est.Confidence}
		npCount, err := np.Count(a.rel, pred)
		if err != nil {
			return err
		}
		npSum, err := np.Sum(a.rel, agg, pred)
		if err != nil {
			return err
		}
		col.add("count/"+SeriesPCNoProv, stats.RelativeError(npCount.Value, truthCount))
		col.add("sum/"+SeriesPCNoProv, stats.RelativeError(npSum.Value, truthSum))
	}

	if withUnweighted {
		un := &estimator.Estimator{Meta: a.est.Meta, Prov: a.est.Prov, Confidence: a.est.Confidence, UnweightedCut: true}
		uCount, err := un.Count(a.rel, pred)
		if err != nil {
			return err
		}
		uSum, err := un.Sum(a.rel, agg, pred)
		if err != nil {
			return err
		}
		col.add("count/"+SeriesPCUnweighted, stats.RelativeError(uCount.Value, truthCount))
		col.add("sum/"+SeriesPCUnweighted, stats.RelativeError(uSum.Value, truthSum))
	}
	return nil
}

// splitAggSeries turns a collector keyed "agg/Series" into one value map per
// aggregate.
func splitAggSeries(col *collector) (count, sum map[string]float64) {
	count = make(map[string]float64)
	sum = make(map[string]float64)
	for k, v := range col.meanPct() {
		switch {
		case len(k) > 6 && k[:6] == "count/":
			count[k[6:]] = v
		case len(k) > 4 && k[:4] == "sum/":
			sum[k[4:]] = v
		}
	}
	return count, sum
}

// Figure2 reproduces Figure 2: query error as a function of the privacy
// parameters. fig2a/fig2b sweep the discrete parameter p (count, sum);
// fig2c/fig2d sweep the numerical parameter b (count, sum). No data error.
func Figure2(cfg Config) ([]*Table, error) {
	ps := []float64{0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5}
	bs := []float64{1, 5, 10, 15, 20, 30, 40, 50}

	a := &Table{ID: "fig2a", Title: "Figure 2a: count error vs discrete privacy p", XLabel: "p", Series: []string{SeriesDirect, SeriesPrivateClean}}
	b := &Table{ID: "fig2b", Title: "Figure 2b: sum error vs discrete privacy p", XLabel: "p", Series: []string{SeriesDirect, SeriesPrivateClean}}
	for _, p := range ps {
		col, err := runTrials(cfg.Trials, func(trial int, col *collector) error {
			return syntheticTrial(trialRNG(cfg.Seed, 0, trial), trialParams{p: p}.withDefaults(cfg), col)
		})
		if err != nil {
			return nil, fmt.Errorf("fig2ab p=%v: %w", p, err)
		}
		countV, sumV := splitAggSeries(col)
		a.Points = append(a.Points, Point{X: p, Values: countV})
		b.Points = append(b.Points, Point{X: p, Values: sumV})
	}

	c := &Table{ID: "fig2c", Title: "Figure 2c: count error vs numerical privacy b", XLabel: "b", Series: []string{SeriesDirect, SeriesPrivateClean}}
	d := &Table{ID: "fig2d", Title: "Figure 2d: sum error vs numerical privacy b", XLabel: "b", Series: []string{SeriesDirect, SeriesPrivateClean}}
	for _, bv := range bs {
		col, err := runTrials(cfg.Trials, func(trial int, col *collector) error {
			return syntheticTrial(trialRNG(cfg.Seed+1000, 0, trial), trialParams{b: bv}.withDefaults(cfg), col)
		})
		if err != nil {
			return nil, fmt.Errorf("fig2cd b=%v: %w", bv, err)
		}
		countV, sumV := splitAggSeries(col)
		c.Points = append(c.Points, Point{X: bv, Values: countV})
		d.Points = append(d.Points, Point{X: bv, Values: sumV})
	}
	return []*Table{a, b, c, d}, nil
}

// Figure3 reproduces Figure 3: query error as a function of predicate
// selectivity (fraction of distinct values the predicate selects).
func Figure3(cfg Config) ([]*Table, error) {
	fracs := []float64{0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5}
	sumT := &Table{ID: "fig3a", Title: "Figure 3a: sum error vs selectivity", XLabel: "selectivity", Series: []string{SeriesDirect, SeriesPrivateClean}}
	countT := &Table{ID: "fig3b", Title: "Figure 3b: count error vs selectivity", XLabel: "selectivity", Series: []string{SeriesDirect, SeriesPrivateClean}}
	for _, f := range fracs {
		col, err := runTrials(cfg.Trials, func(trial int, col *collector) error {
			return syntheticTrial(trialRNG(cfg.Seed+2000, 0, trial), trialParams{selFrac: f}.withDefaults(cfg), col)
		})
		if err != nil {
			return nil, fmt.Errorf("fig3 selectivity=%v: %w", f, err)
		}
		countV, sumV := splitAggSeries(col)
		sumT.Points = append(sumT.Points, Point{X: f, Values: sumV})
		countT.Points = append(countT.Points, Point{X: f, Values: countV})
	}
	return []*Table{sumT, countT}, nil
}

// Figure4 reproduces Figure 4: query error as a function of the Zipfian
// skew z.
func Figure4(cfg Config) ([]*Table, error) {
	zs := []float64{0.001, 0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4}
	countT := &Table{ID: "fig4a", Title: "Figure 4a: count error vs skew z", XLabel: "z", Series: []string{SeriesDirect, SeriesPrivateClean}}
	sumT := &Table{ID: "fig4b", Title: "Figure 4b: sum error vs skew z", XLabel: "z", Series: []string{SeriesDirect, SeriesPrivateClean}}
	for _, z := range zs {
		col, err := runTrials(cfg.Trials, func(trial int, col *collector) error {
			return syntheticTrial(trialRNG(cfg.Seed+3000, 0, trial), trialParams{z: z}.withDefaults(cfg), col)
		})
		if err != nil {
			return nil, fmt.Errorf("fig4 z=%v: %w", z, err)
		}
		countV, sumV := splitAggSeries(col)
		countT.Points = append(countT.Points, Point{X: z, Values: countV})
		sumT.Points = append(sumT.Points, Point{X: z, Values: sumV})
	}
	return []*Table{countT, sumT}, nil
}

// Figure5 reproduces Figure 5: query error as a function of the data error
// rate — the fraction of distinct values affected by transformation errors
// (alternative representations the cleaner maps one-to-one back to their
// canonical values). PrivateClean tracks the renames through provenance and
// keeps near-constant error; the provenance-free correction degrades as the
// error rate grows.
func Figure5(cfg Config) ([]*Table, error) {
	rates := []float64{0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5}
	sumT := &Table{ID: "fig5a", Title: "Figure 5a: sum error vs data error rate", XLabel: "error rate", Series: []string{SeriesDirect, SeriesPCNoProv, SeriesPrivateClean}}
	countT := &Table{ID: "fig5b", Title: "Figure 5b: count error vs data error rate", XLabel: "error rate", Series: []string{SeriesDirect, SeriesPCNoProv, SeriesPrivateClean}}
	for _, e := range rates {
		col, err := runTrials(cfg.Trials, func(trial int, col *collector) error {
			t := trialParams{useClean: true, rename: e, selFrac: 0.1, z: 1}.withDefaults(cfg)
			return syntheticTrial(trialRNG(cfg.Seed+4000, 0, trial), t, col)
		})
		if err != nil {
			return nil, fmt.Errorf("fig5 rate=%v: %w", e, err)
		}
		countV, sumV := splitAggSeries(col)
		sumT.Points = append(sumT.Points, Point{X: e, Values: sumV})
		countT.Points = append(countT.Points, Point{X: e, Values: countV})
	}
	return []*Table{sumT, countT}, nil
}

// Figure6 reproduces Figure 6: query error as a function of the merge rate
// — the fraction of distinct values the cleaner merges into other existing
// distinct values (clustered, several sources per canonical target). Merges
// change the predicate's dirty-domain selectivity, which is exactly what
// the provenance graph recovers.
func Figure6(cfg Config) ([]*Table, error) {
	mergeRates := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	sumT := &Table{ID: "fig6a", Title: "Figure 6a: sum error vs merge rate", XLabel: "merge rate", Series: []string{SeriesDirect, SeriesPCNoProv, SeriesPrivateClean}}
	countT := &Table{ID: "fig6b", Title: "Figure 6b: count error vs merge rate", XLabel: "merge rate", Series: []string{SeriesDirect, SeriesPCNoProv, SeriesPrivateClean}}
	for _, m := range mergeRates {
		col, err := runTrials(cfg.Trials, func(trial int, col *collector) error {
			t := trialParams{useClean: true, merge: m, selFrac: 0.1, z: 1}.withDefaults(cfg)
			return syntheticTrial(trialRNG(cfg.Seed+5000, 0, trial), t, col)
		})
		if err != nil {
			return nil, fmt.Errorf("fig6 merge=%v: %w", m, err)
		}
		countV, sumV := splitAggSeries(col)
		sumT.Points = append(sumT.Points, Point{X: m, Values: sumV})
		countT.Points = append(countT.Points, Point{X: m, Values: countV})
	}
	return []*Table{sumT, countT}, nil
}

// Figure7 reproduces Figure 7: multi-attribute cleaning. A fraction of rows
// lose their instructor value; an FD repair on (section -> instructor)
// restores them. Because the dirty value NULL forks across instructors, the
// provenance graph is weighted: the weighted cut (PC-W) beats the
// unweighted cut (PC-U), which beats Direct.
func Figure7(cfg Config) ([]*Table, error) {
	rates := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5}
	series := []string{SeriesDirect, SeriesPCUnweighted, SeriesPCWeighted}
	countT := &Table{ID: "fig7a", Title: "Figure 7a: count error, multi-attribute cleaning", XLabel: "error rate", Series: series}
	sumT := &Table{ID: "fig7b", Title: "Figure 7b: sum error, multi-attribute cleaning", XLabel: "error rate", Series: series}
	for _, e := range rates {
		col, err := runTrials(cfg.Trials, func(trial int, col *collector) error {
			return multiAttrTrial(trialRNG(cfg.Seed+6000, 0, trial), cfg, e, col)
		})
		if err != nil {
			return nil, fmt.Errorf("fig7 rate=%v: %w", e, err)
		}
		countV, sumV := splitAggSeries(col)
		// Rename PrivateClean -> PC-W for this figure's display.
		countV[SeriesPCWeighted] = countV[SeriesPrivateClean]
		sumV[SeriesPCWeighted] = sumV[SeriesPrivateClean]
		delete(countV, SeriesPrivateClean)
		delete(sumV, SeriesPrivateClean)
		countT.Points = append(countT.Points, Point{X: e, Values: countV})
		sumT.Points = append(sumT.Points, Point{X: e, Values: sumV})
	}
	return []*Table{countT, sumT}, nil
}

func multiAttrTrial(rng *rand.Rand, cfg Config, errorRate float64, col *collector) error {
	r, err := workload.MultiAttr(rng, workload.MultiAttrConfig{
		S: cfg.S, Z: cfg.Z, ErrorRate: errorRate,
	})
	if err != nil {
		return err
	}
	repair := cleaning.FDImpute{LHS: []string{"section"}, RHS: "instructor"}

	rClean := r.Clone()
	if err := cleaning.Apply(&cleaning.Context{Rel: rClean}, repair); err != nil {
		return err
	}

	v, meta, err := privacy.Privatize(rng, r, privacy.Uniform(r.Schema(), cfg.P, cfg.B))
	if err != nil {
		return err
	}
	a := newAnalysis(v, meta)
	if err := a.clean(repair); err != nil {
		return err
	}

	cleanDomain, err := rClean.Domain("instructor")
	if err != nil {
		return err
	}
	pred := estimator.In("instructor", pickValues(rng, cleanDomain, 2)...)
	return recordQueryErrors(col, a, rClean, "value", pred, true)
}

// Figure9 reproduces Figure 9: query error as a function of the distinct
// fraction N/S, with a 5% data error rate. As the distinct fraction grows
// the accuracy of both estimators degrades, with a crossover beyond which
// Direct is the better estimator.
func Figure9(cfg Config) ([]*Table, error) {
	ns := []int{20, 50, 100, 200, 300, 400, 500, 700, 900}
	sumT := &Table{ID: "fig9a", Title: "Figure 9a: sum error vs distinct fraction N/S", XLabel: "N/S", Series: []string{SeriesDirect, SeriesPCNoProv, SeriesPrivateClean}}
	countT := &Table{ID: "fig9b", Title: "Figure 9b: count error vs distinct fraction N/S", XLabel: "N/S", Series: []string{SeriesDirect, SeriesPCNoProv, SeriesPrivateClean}}
	for _, n := range ns {
		col, err := runTrials(cfg.Trials, func(trial int, col *collector) error {
			t := trialParams{n: n, useClean: true, merge: 0.05}.withDefaults(cfg)
			return syntheticTrial(trialRNG(cfg.Seed+7000, 0, trial), t, col)
		})
		if err != nil {
			return nil, fmt.Errorf("fig9 N=%d: %w", n, err)
		}
		x := float64(n) / float64(cfg.S)
		countV, sumV := splitAggSeries(col)
		sumT.Points = append(sumT.Points, Point{X: x, Values: sumV})
		countT.Points = append(countT.Points, Point{X: x, Values: countV})
	}
	return []*Table{sumT, countT}, nil
}
