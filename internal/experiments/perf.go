package experiments

import (
	"time"

	"privateclean/internal/cleaning"
	"privateclean/internal/estimator"
	"privateclean/internal/privacy"
	"privateclean/internal/provenance"
	"privateclean/internal/workload"
)

// PerfProfile measures the wall-clock cost of each pipeline stage —
// privatize (provider), clean with provenance (analyst), and one corrected
// count query — across dataset sizes. The paper's complexity claims
// (Propositions 3/4: provenance space O(N̂), query O(l') plus the relation
// scan) imply all three stages should scale linearly in S; this table makes
// that visible.
func PerfProfile(cfg Config) (*Table, error) {
	sizes := []int{1000, 10000, 100000}
	t := &Table{
		ID:     "perf",
		Title:  "Pipeline stage latency (ms) vs dataset size",
		XLabel: "rows",
		Series: []string{"privatize ms", "clean ms", "query ms"},
	}
	reps := 5
	for _, size := range sizes {
		rng := trialRNG(cfg.Seed+17000, 0, size)
		r, err := workload.Synthetic(rng, workload.SyntheticConfig{S: size, N: cfg.N, Z: cfg.Z})
		if err != nil {
			return nil, err
		}
		domain, err := r.Domain("category")
		if err != nil {
			return nil, err
		}
		mapping, err := workload.RandomValueMap(rng, domain, 0.2, 0)
		if err != nil {
			return nil, err
		}
		merge := cleaning.DictionaryMerge{Attr: "category", Mapping: mapping}
		params := privacy.Uniform(r.Schema(), cfg.P, cfg.B)

		var privTotal, cleanTotal, queryTotal time.Duration
		for rep := 0; rep < reps; rep++ {
			start := time.Now()
			v, meta, err := privacy.PrivatizeParallel(cfg.Seed+17000+int64(rep), r, params, cfg.Workers)
			if err != nil {
				return nil, err
			}
			privTotal += time.Since(start)

			prov := provenance.NewStore()
			start = time.Now()
			if err := cleaning.Apply(&cleaning.Context{Rel: v, Prov: prov, Meta: meta}, merge); err != nil {
				return nil, err
			}
			cleanTotal += time.Since(start)

			est := &estimator.Estimator{Meta: meta, Prov: prov}
			pred := estimator.In("category", pickValues(rng, domain, cfg.L)...)
			start = time.Now()
			if _, err := est.Count(v, pred); err != nil {
				return nil, err
			}
			queryTotal += time.Since(start)
		}
		ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / float64(reps) / 1000 }
		t.Points = append(t.Points, Point{X: float64(size), Values: map[string]float64{
			"privatize ms": ms(privTotal),
			"clean ms":     ms(cleanTotal),
			"query ms":     ms(queryTotal),
		}})
	}
	return t, nil
}
