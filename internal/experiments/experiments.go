// Package experiments reproduces every table and figure of the PrivateClean
// paper's evaluation (Section 8). Each FigureN function regenerates the
// series the corresponding figure plots: the mean relative query error (%)
// of the Direct baseline and the PrivateClean estimator, averaged over
// Config.Trials randomized private instances with a randomly selected query
// per instance (Appendix D's protocol).
//
// Ground truth for every trial is the query result on the hypothetically
// cleaned non-private relation R_clean = C(R) (Section 3.2.2), computed by
// running the identical cleaner composition on the original relation.
package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"privateclean/internal/stats"
)

// Config carries the Table 1 default parameters of the synthetic
// experiments plus the experiment protocol knobs.
type Config struct {
	// Trials is the number of random private instances per point
	// (paper: 100).
	Trials int
	// Seed derives all per-trial RNGs, so runs are reproducible.
	Seed int64
	// S is the number of rows (Table 1: 1000).
	S int
	// N is the number of distinct categorical values (Table 1: 50).
	N int
	// Z is the Zipfian skew (Table 1: 2).
	Z float64
	// P is the discrete privacy parameter (Table 1: 0.1).
	P float64
	// B is the numerical privacy parameter (Table 1: 10).
	B float64
	// L is the number of distinct values selected by the predicate
	// (Table 1: 5).
	L int
	// Confidence is the confidence level for intervals.
	Confidence float64
	// Workers is the privatizer pool size for the stages that use
	// privacy.PrivatizeParallel (the perf profile); <= 0 means GOMAXPROCS.
	// The released bytes for a given seed do not depend on it.
	Workers int
}

// Default returns the Table 1 defaults with 100 trials.
func Default() Config {
	return Config{Trials: 100, Seed: 1, S: 1000, N: 50, Z: 2, P: 0.1, B: 10, L: 5, Confidence: 0.95}
}

// DefaultParams renders Table 1 (the synthetic experiment's default
// parameters) as a formatted table.
func DefaultParams() *Table {
	t := &Table{
		ID:     "table1",
		Title:  "Table 1: Default parameters in the synthetic experiment",
		XLabel: "symbol",
		Series: []string{"default"},
	}
	d := Default()
	t.Points = []Point{
		{Label: "p (discrete privacy parameter)", Values: map[string]float64{"default": d.P}},
		{Label: "b (numerical privacy parameter)", Values: map[string]float64{"default": d.B}},
		{Label: "N (number of distinct values)", Values: map[string]float64{"default": float64(d.N)}},
		{Label: "S (number of total records)", Values: map[string]float64{"default": float64(d.S)}},
		{Label: "l (distinct values selected by predicate)", Values: map[string]float64{"default": float64(d.L)}},
		{Label: "z (Zipfian skew)", Values: map[string]float64{"default": d.Z}},
	}
	return t
}

// Point is one x position of a figure with one value per series.
type Point struct {
	// X is the numeric x coordinate; Label overrides its rendering when set.
	X      float64
	Label  string
	Values map[string]float64
}

// Table is one reproduced figure (or table): a named set of series sampled
// at common x positions.
type Table struct {
	// ID is the experiment id from DESIGN.md, e.g. "fig2a".
	ID string
	// Title describes the figure.
	Title string
	// XLabel names the x axis.
	XLabel string
	// Series lists the series names in display order.
	Series []string
	// Points are the sampled positions in x order.
	Points []Point
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s [%s]\n", t.Title, t.ID)
	header := make([]string, 0, len(t.Series)+1)
	header = append(header, t.XLabel)
	header = append(header, t.Series...)
	rows := make([][]string, 0, len(t.Points))
	for _, p := range t.Points {
		row := make([]string, 0, len(t.Series)+1)
		if p.Label != "" {
			row = append(row, p.Label)
		} else {
			row = append(row, trimFloat(p.X))
		}
		for _, s := range t.Series {
			v, ok := p.Values[s]
			if !ok {
				row = append(row, "-")
			} else {
				row = append(row, trimFloat(v))
			}
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}

// FormatCSV renders the table as CSV: a header of x plus series names, one
// row per point. Missing series cells are empty.
func (t *Table) FormatCSV() string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	header := append([]string{t.XLabel}, t.Series...)
	_ = w.Write(header)
	for _, p := range t.Points {
		row := make([]string, 0, len(header))
		if p.Label != "" {
			row = append(row, p.Label)
		} else {
			row = append(row, strconv.FormatFloat(p.X, 'g', -1, 64))
		}
		for _, s := range t.Series {
			if v, ok := p.Values[s]; ok {
				row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
			} else {
				row = append(row, "")
			}
		}
		_ = w.Write(row)
	}
	w.Flush()
	return sb.String()
}

// Chart renders the table as a figure-like ASCII chart: one panel per
// series, each point drawn as a horizontal bar scaled to the table's
// maximum value. Intended for eyeballing the shapes the paper's figures
// plot without leaving the terminal.
func (t *Table) Chart() string {
	const width = 50
	maxVal := 0.0
	for _, p := range t.Points {
		for _, s := range t.Series {
			if v, ok := p.Values[s]; ok && v > maxVal {
				maxVal = v
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s [%s]\n", t.Title, t.ID)
	if maxVal <= 0 {
		sb.WriteString("  (no data)\n")
		return sb.String()
	}
	labelWidth := len(t.XLabel)
	for _, p := range t.Points {
		l := p.Label
		if l == "" {
			l = trimFloat(p.X)
		}
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	for _, s := range t.Series {
		fmt.Fprintf(&sb, "-- %s (max %.4g) --\n", s, maxVal)
		for _, p := range t.Points {
			v, ok := p.Values[s]
			if !ok {
				continue
			}
			n := int(v / maxVal * width)
			if n < 0 {
				n = 0
			}
			if n > width {
				n = width
			}
			label := p.Label
			if label == "" {
				label = trimFloat(p.X)
			}
			fmt.Fprintf(&sb, "  %-*s |%s %s\n", labelWidth, label, strings.Repeat("#", n), trimFloat(v))
		}
	}
	return sb.String()
}

// MarshalJSON renders the table with its identifying fields and points.
func (t *Table) MarshalJSON() ([]byte, error) {
	type pointJSON struct {
		X      float64            `json:"x"`
		Label  string             `json:"label,omitempty"`
		Values map[string]float64 `json:"values"`
	}
	points := make([]pointJSON, len(t.Points))
	for i, p := range t.Points {
		points[i] = pointJSON{X: p.X, Label: p.Label, Values: p.Values}
	}
	return json.Marshal(struct {
		ID     string      `json:"id"`
		Title  string      `json:"title"`
		XLabel string      `json:"xlabel"`
		Series []string    `json:"series"`
		Points []pointJSON `json:"points"`
	}{t.ID, t.Title, t.XLabel, t.Series, points})
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// collector accumulates per-trial relative errors for several series and
// reports the mean over finite entries, as a percentage.
type collector struct {
	errs map[string][]float64
}

func newCollector() *collector { return &collector{errs: make(map[string][]float64)} }

func (c *collector) add(series string, relErr float64) {
	c.errs[series] = append(c.errs[series], relErr)
}

// meanPct returns the mean error percent per series.
func (c *collector) meanPct() map[string]float64 {
	out := make(map[string]float64, len(c.errs))
	for s, es := range c.errs {
		m, err := stats.MeanFinite(es)
		if err != nil {
			continue
		}
		out[s] = m * 100
	}
	return out
}

// splitmix64 is the SplitMix64 finalizer; it decorrelates structured seed
// families (math/rand's lagged-Fibonacci seeding correlates visibly under
// affine seed sequences).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// trialRNG derives a deterministic, well-mixed RNG for (seed, point, trial).
func trialRNG(seed int64, point, trial int) *rand.Rand {
	x := splitmix64(uint64(seed))
	x = splitmix64(x + uint64(point))
	x = splitmix64(x + uint64(trial))
	return rand.New(rand.NewSource(int64(x)))
}

// runTrials executes fn for each trial index concurrently and returns the
// merged collector. Every trial writes into its own collector and merging
// happens in trial order, so the result is bitwise identical to the
// sequential loop (per-trial RNGs are independent by construction).
func runTrials(n int, fn func(trial int, col *collector) error) (*collector, error) {
	cols := make([]*collector, n)
	errs := make([]error, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for trial := range next {
				col := newCollector()
				cols[trial] = col
				errs[trial] = fn(trial, col)
			}
		}()
	}
	for trial := 0; trial < n; trial++ {
		next <- trial
	}
	close(next)
	wg.Wait()

	merged := newCollector()
	for trial := 0; trial < n; trial++ {
		if errs[trial] != nil {
			return nil, errs[trial]
		}
		for series, vals := range cols[trial].errs {
			merged.errs[series] = append(merged.errs[series], vals...)
		}
	}
	return merged, nil
}

// pickValues selects k distinct values uniformly from domain (sorted input
// recommended for determinism given the RNG).
func pickValues(rng *rand.Rand, domain []string, k int) []string {
	if k > len(domain) {
		k = len(domain)
	}
	perm := rng.Perm(len(domain))
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = domain[perm[i]]
	}
	sort.Strings(out)
	return out
}
