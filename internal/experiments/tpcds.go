package experiments

import (
	"fmt"
	"math/rand"

	"privateclean/internal/cleaning"
	"privateclean/internal/estimator"
	"privateclean/internal/privacy"
	"privateclean/internal/relation"
	"privateclean/internal/stats"
	"privateclean/internal/workload"
)

// TPCDSDefault returns the dataset configuration used by the Figure 8
// experiments.
func TPCDSDefault() workload.TPCDSConfig {
	return workload.TPCDSConfig{}.WithDefaults()
}

// Figure8 reproduces Figure 8: constraint-based cleaning on the synthetic
// TPC-DS customer_address table.
//
//   - fig8a corrupts ca_state in a growing number of rows and repairs with
//     the functional dependency [ca_city, ca_county] -> ca_state; the query
//     is SELECT count(1) FROM R GROUP BY ca_state and the error is the mean
//     relative per-group error. The FD repair is heuristic (majority
//     repair), so residual error grows with the corruption count for both
//     estimators.
//   - fig8b appends one-character corruptions to ca_country and repairs
//     with a distance-1 matching dependency; the query groups by
//     ca_country. The MD merges values in the domain, so PrivateClean's
//     advantage over Direct is larger than in fig8a.
func Figure8(cfg Config) ([]*Table, error) {
	ds := TPCDSDefault()
	corruptions := []int{0, 100, 200, 300, 400, 500}

	a := &Table{ID: "fig8a", Title: "Figure 8a: group-by ca_state count error vs state corruptions (FD repair)", XLabel: "corruptions", Series: []string{SeriesDirect, SeriesPCNoProv, SeriesPrivateClean}}
	for _, k := range corruptions {
		col, err := runTrials(cfg.Trials, func(trial int, col *collector) error {
			return tpcdsTrialFD(trialRNG(cfg.Seed+8000, 0, trial), cfg, ds, k, col)
		})
		if err != nil {
			return nil, fmt.Errorf("fig8a corruptions=%d: %w", k, err)
		}
		a.Points = append(a.Points, Point{X: float64(k), Values: col.meanPct()})
	}

	b := &Table{ID: "fig8b", Title: "Figure 8b: group-by ca_country count error vs country corruptions (MD repair)", XLabel: "corruptions", Series: []string{SeriesDirect, SeriesPCNoProv, SeriesPrivateClean}}
	for _, k := range corruptions {
		col, err := runTrials(cfg.Trials, func(trial int, col *collector) error {
			return tpcdsTrialMD(trialRNG(cfg.Seed+9000, 0, trial), cfg, ds, k, col)
		})
		if err != nil {
			return nil, fmt.Errorf("fig8b corruptions=%d: %w", k, err)
		}
		b.Points = append(b.Points, Point{X: float64(k), Values: col.meanPct()})
	}
	return []*Table{a, b}, nil
}

func tpcdsTrialFD(rng *rand.Rand, cfg Config, ds workload.TPCDSConfig, corruptions int, col *collector) error {
	r, err := workload.CustomerAddress(rng, ds)
	if err != nil {
		return err
	}
	if err := workload.CorruptStates(rng, r, corruptions, ds.States); err != nil {
		return err
	}
	// Two chained repairs, as constraint-repair algorithms do when solving
	// for all constraints and their implications (Section 8.2): the city
	// determines the county, and (city, county) determine the state. The
	// first repair re-aligns rows whose county disagrees with their city
	// (including rows whose city was randomized), so the second repair's
	// groups are well-formed.
	repairs := []cleaning.Op{
		cleaning.FDRepair{LHS: []string{"ca_city"}, RHS: "ca_county"},
		cleaning.FDRepair{LHS: []string{"ca_city", "ca_county"}, RHS: "ca_state"},
	}
	return tpcdsGroupByTrial(rng, cfg, r, "ca_state", col, repairs...)
}

func tpcdsTrialMD(rng *rand.Rand, cfg Config, ds workload.TPCDSConfig, corruptions int, col *collector) error {
	r, err := workload.CustomerAddress(rng, ds)
	if err != nil {
		return err
	}
	if err := workload.CorruptCountries(rng, r, corruptions); err != nil {
		return err
	}
	repair := cleaning.MDRepair{Attr: "ca_country", MaxDist: 1}
	return tpcdsGroupByTrial(rng, cfg, r, "ca_country", col, repair)
}

// tpcdsGroupByTrial runs one trial of a GROUP BY count experiment: clean the
// original for ground truth, privatize and clean the view, estimate
// per-group counts, and record the mean relative per-group error.
func tpcdsGroupByTrial(rng *rand.Rand, cfg Config, r *relation.Relation, groupAttr string, col *collector, repairs ...cleaning.Op) error {
	rClean := r.Clone()
	if err := cleaning.Apply(&cleaning.Context{Rel: rClean}, repairs...); err != nil {
		return err
	}
	v, meta, err := privacy.Privatize(rng, r, privacy.Uniform(r.Schema(), cfg.P, cfg.B))
	if err != nil {
		return err
	}
	a := newAnalysis(v, meta)
	if err := a.clean(repairs...); err != nil {
		return err
	}

	truth, err := rClean.ValueCounts(groupAttr)
	if err != nil {
		return err
	}
	noProv := &estimator.Estimator{Meta: a.est.Meta, Confidence: a.est.Confidence}
	var directErrs, pcErrs, npErrs []float64
	for g, want := range truth {
		if want == 0 {
			continue
		}
		pred := estimator.Eq(groupAttr, g)
		direct, err := estimator.DirectCount(a.rel, pred)
		if err != nil {
			return err
		}
		pc, err := a.est.Count(a.rel, pred)
		if err != nil {
			return err
		}
		np, err := noProv.Count(a.rel, pred)
		if err != nil {
			return err
		}
		directErrs = append(directErrs, stats.RelativeError(direct, float64(want)))
		pcErrs = append(pcErrs, stats.RelativeError(pc.Value, float64(want)))
		npErrs = append(npErrs, stats.RelativeError(np.Value, float64(want)))
	}
	if d, err := stats.MeanFinite(directErrs); err == nil {
		col.add(SeriesDirect, d)
	}
	if p, err := stats.MeanFinite(pcErrs); err == nil {
		col.add(SeriesPrivateClean, p)
	}
	if n, err := stats.MeanFinite(npErrs); err == nil {
		col.add(SeriesPCNoProv, n)
	}
	return nil
}
