package experiments

import (
	"fmt"
	"math/rand"

	"privateclean/internal/cleaning"
	"privateclean/internal/estimator"
	"privateclean/internal/privacy"
	"privateclean/internal/relation"
	"privateclean/internal/stats"
	"privateclean/internal/workload"
)

// matchedParams builds GRR parameters where the numerical attribute's
// Laplace scale is chosen so both attributes carry the same per-attribute
// epsilon (the Figure 10 protocol: "we accordingly scale the numerical
// privacy parameter b such that both attributes have the same eps privacy
// parameter").
func matchedParams(r *relation.Relation, p float64) (privacy.Params, error) {
	eps := privacy.EpsilonDiscrete(p)
	params := privacy.Params{P: make(map[string]float64), B: make(map[string]float64)}
	for _, name := range r.Schema().DiscreteNames() {
		params.P[name] = p
	}
	for _, name := range r.Schema().NumericNames() {
		col, err := r.Numeric(name)
		if err != nil {
			return privacy.Params{}, err
		}
		delta := 0.0
		if lo, hi, err := stats.MinMax(col); err == nil {
			delta = hi - lo
		}
		b, err := privacy.BForEpsilon(delta, eps)
		if err != nil {
			return privacy.Params{}, err
		}
		params.B[name] = b
	}
	return params, nil
}

// Figure10 reproduces Figure 10: count and avg query error on the
// IntelWireless sensor log as a function of privacy. The cleaning task
// merges spurious sensor ids to NULL; the queries are
//
//	SELECT count(1) FROM R WHERE sensor_id != NULL
//	SELECT avg(temp) FROM R WHERE sensor_id != NULL
//
// The gray reference series is the query on the original dirty dataset with
// no cleaning and no privacy — past a privacy level, the cleaned private
// relation is *more* accurate than the dirty original.
func Figure10(cfg Config) ([]*Table, error) {
	return realDatasetFigure(cfg, realSpec{
		id:    "fig10",
		title: "Figure 10: IntelWireless",
		seed:  cfg.Seed + 10000,
		gen: func(rng *rand.Rand) (*relation.Relation, error) {
			return workload.IntelWireless(rng, workload.IntelWirelessConfig{})
		},
		agg:  "temp",
		pred: estimator.NotEq("sensor_id", relation.Null),
		ops: func(*relation.Relation) []cleaning.Op {
			valid := workload.ValidSensorIDs(68)
			return []cleaning.Op{cleaning.NullifyInvalid{Attr: "sensor_id", Valid: func(v string) bool { return valid[v] }}}
		},
	})
}

// Figure11 reproduces Figure 11: count and avg query error on the MCAFE
// course evaluations as a function of privacy. The transformation merges
// European country codes into one region — a use of the bipartite graph
// beyond traditional cleaning — and the queries aggregate the merged
// region:
//
//	SELECT count(1) FROM R WHERE isEurope(country)
//	SELECT avg(score) FROM R WHERE isEurope(country)
//
// The distinct fraction is high (~21%), so estimates carry more error than
// IntelWireless (the paper's "much harder dataset").
func Figure11(cfg Config) ([]*Table, error) {
	return realDatasetFigure(cfg, realSpec{
		id:    "fig11",
		title: "Figure 11: MCAFE",
		seed:  cfg.Seed + 11000,
		gen:   func(rng *rand.Rand) (*relation.Relation, error) { return workload.MCAFE(rng, workload.MCAFEConfig{}) },
		agg:   "score",
		pred:  estimator.Eq("country", "Europe"),
		ops: func(r *relation.Relation) []cleaning.Op {
			return []cleaning.Op{cleaning.Transform{
				Attr:  "country",
				Label: "isEurope-merge",
				F: func(v string) string {
					if workload.IsEurope(v) {
						return "Europe"
					}
					return v
				},
			}}
		},
	})
}

type realSpec struct {
	id, title string
	seed      int64
	gen       func(*rand.Rand) (*relation.Relation, error)
	ops       func(*relation.Relation) []cleaning.Op
	agg       string
	pred      estimator.Predicate
}

func realDatasetFigure(cfg Config, spec realSpec) ([]*Table, error) {
	ps := []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5}
	series := []string{SeriesDirect, SeriesPrivateClean, SeriesDirtyNoPriv}
	countT := &Table{ID: spec.id + "a", Title: spec.title + ": count error vs privacy", XLabel: "p", Series: series}
	avgT := &Table{ID: spec.id + "b", Title: spec.title + ": avg error vs privacy", XLabel: "p", Series: series}

	for _, p := range ps {
		col, err := runTrials(cfg.Trials, func(trial int, col *collector) error {
			return realTrial(trialRNG(spec.seed, 0, trial), cfg, spec, p, col)
		})
		if err != nil {
			return nil, fmt.Errorf("%s p=%v: %w", spec.id, p, err)
		}
		means := col.meanPct()
		pick := func(prefix string) map[string]float64 {
			out := make(map[string]float64)
			for _, name := range series {
				if v, ok := means[prefix+name]; ok {
					out[name] = v
				}
			}
			return out
		}
		countT.Points = append(countT.Points, Point{X: p, Values: pick("count/")})
		avgT.Points = append(avgT.Points, Point{X: p, Values: pick("avg/")})
	}
	return []*Table{countT, avgT}, nil
}

func realTrial(rng *rand.Rand, cfg Config, spec realSpec, p float64, col *collector) error {
	r, err := spec.gen(rng)
	if err != nil {
		return err
	}
	ops := spec.ops(r)

	rClean := r.Clone()
	if err := cleaning.Apply(&cleaning.Context{Rel: rClean}, ops...); err != nil {
		return err
	}

	params, err := matchedParams(r, p)
	if err != nil {
		return err
	}
	v, meta, err := privacy.Privatize(rng, r, params)
	if err != nil {
		return err
	}
	a := newAnalysis(v, meta)
	if err := a.clean(ops...); err != nil {
		return err
	}

	truthCount, err := estimator.DirectCount(rClean, spec.pred)
	if err != nil {
		return err
	}
	truthAvg, err := estimator.DirectAvg(rClean, spec.agg, spec.pred)
	if err != nil {
		return err
	}

	directCount, err := estimator.DirectCount(a.rel, spec.pred)
	if err != nil {
		return err
	}
	directAvg, err := estimator.DirectAvg(a.rel, spec.agg, spec.pred)
	if err != nil {
		directAvg = 0
	}
	pcCount, err := a.est.Count(a.rel, spec.pred)
	if err != nil {
		return err
	}
	pcAvg, err := a.est.Avg(a.rel, spec.agg, spec.pred)
	if err != nil {
		return err
	}

	col.add("count/"+SeriesDirect, stats.RelativeError(directCount, truthCount))
	col.add("count/"+SeriesPrivateClean, stats.RelativeError(pcCount.Value, truthCount))
	col.add("avg/"+SeriesDirect, stats.RelativeError(directAvg, truthAvg))
	col.add("avg/"+SeriesPrivateClean, stats.RelativeError(pcAvg.Value, truthAvg))

	// Gray reference: the original dirty relation, no cleaning, no privacy.
	// The Figure 10/11 predicates reference cleaned values; on the dirty
	// relation they select whatever rows nominally match.
	dirtyCount, err := estimator.DirectCount(r, spec.pred)
	if err != nil {
		return err
	}
	col.add("count/"+SeriesDirtyNoPriv, stats.RelativeError(dirtyCount, truthCount))
	if dirtyAvg, err := estimator.DirectAvg(r, spec.agg, spec.pred); err == nil {
		col.add("avg/"+SeriesDirtyNoPriv, stats.RelativeError(dirtyAvg, truthAvg))
	}
	return nil
}
