package experiments

import (
	"fmt"
	"math/rand"

	"privateclean/internal/cleaning"
	"privateclean/internal/estimator"
	"privateclean/internal/privacy"
	"privateclean/internal/provenance"
	"privateclean/internal/stats"
	"privateclean/internal/workload"
)

// Ablation series names.
const (
	SeriesSumComplement = "Sum(complement)"
	SeriesSumNaive      = "Sum(ignore-FP)"
)

// AblationSumComplement isolates the design choice of Section 5.5: the sum
// estimator subtracts the false-positive mass the randomization leaks into
// the predicate (via the complement-query identity) instead of merely
// inverting the true-positive attenuation. The naive variant's bias grows
// with the mass outside the predicate — the data-correlation scenario the
// paper cites as the sum estimator's "key challenge".
//
// The experiment sweeps the category/value correlation of the synthetic
// generator and reports sum error for Direct, the naive single-equation
// corrected estimator, and the full complement-trick estimator.
func AblationSumComplement(cfg Config) (*Table, error) {
	correlations := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	t := &Table{
		ID:     "abl-sum",
		Title:  "Ablation: sum estimator with vs without false-positive subtraction",
		XLabel: "category/value correlation",
		Series: []string{SeriesDirect, SeriesSumNaive, SeriesSumComplement},
	}
	for _, corr := range correlations {
		col := newCollector()
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := trialRNG(cfg.Seed+14000, 0, trial)
			r, err := workload.Synthetic(rng, workload.SyntheticConfig{
				S: cfg.S, N: cfg.N, Z: cfg.Z, Correlation: corr,
			})
			if err != nil {
				return nil, err
			}
			v, meta, err := privacy.Privatize(rng, r, privacy.Uniform(r.Schema(), cfg.P, cfg.B))
			if err != nil {
				return nil, err
			}
			domain := meta.Discrete["category"].Domain
			pred := estimator.In("category", pickValues(rng, domain, cfg.L)...)
			truth, err := estimator.DirectSum(r, "value", pred)
			if err != nil {
				return nil, err
			}
			est := &estimator.Estimator{Meta: meta, Confidence: cfg.Confidence}
			full, err := est.Sum(v, "value", pred)
			if err != nil {
				return nil, err
			}
			naive, err := est.SumIgnoringFalsePositives(v, "value", pred)
			if err != nil {
				return nil, err
			}
			direct, err := estimator.DirectSum(v, "value", pred)
			if err != nil {
				return nil, err
			}
			col.add(SeriesSumComplement, stats.RelativeError(full.Value, truth))
			col.add(SeriesSumNaive, stats.RelativeError(naive.Value, truth))
			col.add(SeriesDirect, stats.RelativeError(direct, truth))
		}
		t.Points = append(t.Points, Point{X: corr, Values: col.meanPct()})
	}
	return t, nil
}

// AblationProvenanceCost measures the space side of Propositions 3 and 4:
// the provenance graph's edge count after single-attribute (fork-free) and
// multi-attribute (weighted) cleaning, as a function of the number of
// affected distinct values N-hat. Fork-free graphs stay at one edge per
// dirty value (O(N-hat)); weighted graphs can fan out.
func AblationProvenanceCost(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "abl-prov",
		Title:  "Ablation: provenance graph edges per dirty value (Prop. 3/4 space bounds)",
		XLabel: "error rate",
		Series: []string{"fork-free edges/value", "weighted edges/value"},
	}
	rates := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	for _, rate := range rates {
		var forkFree, weighted float64
		trials := cfg.Trials
		if trials > 20 {
			trials = 20
		}
		for trial := 0; trial < trials; trial++ {
			rng := trialRNG(cfg.Seed+15000, 0, trial)

			// Single-attribute merge: fork-free graph.
			ff, err := singleAttrEdgeDensity(rng, cfg, rate)
			if err != nil {
				return nil, err
			}
			forkFree += ff

			// Multi-attribute FD imputation: weighted graph.
			w, err := multiAttrEdgeDensity(rng, cfg, rate)
			if err != nil {
				return nil, err
			}
			weighted += w
		}
		t.Points = append(t.Points, Point{X: rate, Values: map[string]float64{
			"fork-free edges/value": forkFree / float64(trials),
			"weighted edges/value":  weighted / float64(trials),
		}})
	}
	return t, nil
}

// singleAttrEdgeDensity returns edges per dirty value of the provenance
// graph after a single-attribute merge cleaner at the given error rate.
func singleAttrEdgeDensity(rng *rand.Rand, cfg Config, rate float64) (float64, error) {
	r, err := workload.Synthetic(rng, workload.SyntheticConfig{S: cfg.S, N: cfg.N, Z: cfg.Z})
	if err != nil {
		return 0, err
	}
	domain, err := r.Domain("category")
	if err != nil {
		return 0, err
	}
	mapping, err := workload.RandomValueMap(rng, domain, rate, 0)
	if err != nil {
		return 0, err
	}
	v, meta, err := privacy.Privatize(rng, r, privacy.Uniform(r.Schema(), cfg.P, cfg.B))
	if err != nil {
		return 0, err
	}
	prov := provenance.NewStore()
	ctx := &cleaning.Context{Rel: v, Prov: prov, Meta: meta}
	if err := cleaning.Apply(ctx, cleaning.DictionaryMerge{Attr: "category", Mapping: mapping}); err != nil {
		return 0, err
	}
	g, ok := prov.Graph("category")
	if !ok {
		return 0, fmt.Errorf("no graph recorded")
	}
	return float64(g.EdgeCount()) / float64(g.DomainSize()), nil
}

// multiAttrEdgeDensity returns edges per dirty value after an FD-based
// imputation whose missing value forks across many clean values.
func multiAttrEdgeDensity(rng *rand.Rand, cfg Config, rate float64) (float64, error) {
	r, err := workload.MultiAttr(rng, workload.MultiAttrConfig{S: cfg.S, Z: cfg.Z, ErrorRate: rate})
	if err != nil {
		return 0, err
	}
	v, meta, err := privacy.Privatize(rng, r, privacy.Uniform(r.Schema(), cfg.P, cfg.B))
	if err != nil {
		return 0, err
	}
	prov := provenance.NewStore()
	ctx := &cleaning.Context{Rel: v, Prov: prov, Meta: meta}
	if err := cleaning.Apply(ctx, cleaning.FDImpute{LHS: []string{"section"}, RHS: "instructor"}); err != nil {
		return 0, err
	}
	g, ok := prov.Graph("instructor")
	if !ok {
		return 0, fmt.Errorf("no graph recorded")
	}
	return float64(g.EdgeCount()) / float64(g.DomainSize()), nil
}
