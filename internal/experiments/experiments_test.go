package experiments

import (
	"strings"
	"testing"
)

// fastConfig keeps the experiment tests quick while still exercising every
// code path; the full paper protocol (100 trials) runs in cmd/experiments
// and the benchmarks.
func fastConfig() Config {
	cfg := Default()
	cfg.Trials = 6
	return cfg
}

func checkTables(t *testing.T, tables []*Table, wantIDs ...string) {
	t.Helper()
	if len(tables) != len(wantIDs) {
		t.Fatalf("got %d tables, want %d", len(tables), len(wantIDs))
	}
	for i, tb := range tables {
		if tb.ID != wantIDs[i] {
			t.Fatalf("table %d id = %q, want %q", i, tb.ID, wantIDs[i])
		}
		if len(tb.Points) == 0 {
			t.Fatalf("table %q has no points", tb.ID)
		}
		for _, p := range tb.Points {
			for _, s := range tb.Series {
				v, ok := p.Values[s]
				if !ok {
					continue // some series may be absent at degenerate points
				}
				if v < 0 {
					t.Fatalf("table %q series %q has negative error %v", tb.ID, s, v)
				}
			}
		}
		out := tb.Format()
		if !strings.Contains(out, tb.XLabel) {
			t.Fatalf("Format() missing x label for %q", tb.ID)
		}
	}
}

func TestDefaultParamsTable(t *testing.T) {
	tb := DefaultParams()
	if tb.ID != "table1" || len(tb.Points) != 6 {
		t.Fatalf("table1 = %+v", tb)
	}
	if !strings.Contains(tb.Format(), "Zipfian skew") {
		t.Fatal("missing parameter row")
	}
}

func TestFigure2(t *testing.T) {
	tables, err := Figure2(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, "fig2a", "fig2b", "fig2c", "fig2d")
	// Count is exactly unaffected by b (common random numbers make the
	// whole series identical).
	c := tables[2]
	first := c.Points[0].Values[SeriesDirect]
	for _, p := range c.Points {
		if p.Values[SeriesDirect] != first {
			t.Fatalf("fig2c count should be constant in b: %v vs %v", first, p.Values[SeriesDirect])
		}
	}
	// Sum error grows with b for the corrected estimator.
	d := tables[3]
	lo := d.Points[0].Values[SeriesPrivateClean]
	hi := d.Points[len(d.Points)-1].Values[SeriesPrivateClean]
	if hi < lo {
		t.Fatalf("fig2d sum error should grow with b: %v -> %v", lo, hi)
	}
}

func TestFigure3(t *testing.T) {
	tables, err := Figure3(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, "fig3a", "fig3b")
}

func TestFigure4(t *testing.T) {
	tables, err := Figure4(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, "fig4a", "fig4b")
}

func TestFigure5(t *testing.T) {
	tables, err := Figure5(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, "fig5a", "fig5b")
	// PrivateClean error is exactly constant across rename rates (the
	// bijective rename commutes with estimation under common random
	// numbers) while the provenance-free correction degrades.
	countT := tables[1]
	base := countT.Points[1].Values[SeriesPrivateClean]
	last := countT.Points[len(countT.Points)-1]
	if last.Values[SeriesPrivateClean] > base*1.5 {
		t.Fatalf("PrivateClean should stay ~constant: %v -> %v", base, last.Values[SeriesPrivateClean])
	}
	if last.Values[SeriesPCNoProv] <= last.Values[SeriesPrivateClean] {
		t.Fatalf("PC-NoProv (%v) should exceed PrivateClean (%v) at high error rate",
			last.Values[SeriesPCNoProv], last.Values[SeriesPrivateClean])
	}
}

func TestFigure6(t *testing.T) {
	tables, err := Figure6(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, "fig6a", "fig6b")
	// At merge rate 0 there is no cleaning, so the provenance-free
	// correction coincides with PrivateClean.
	p0 := tables[1].Points[0]
	if p0.Values[SeriesPCNoProv] != p0.Values[SeriesPrivateClean] {
		t.Fatalf("at merge rate 0 PC-NoProv (%v) should equal PrivateClean (%v)",
			p0.Values[SeriesPCNoProv], p0.Values[SeriesPrivateClean])
	}
}

func TestFigure7(t *testing.T) {
	cfg := fastConfig()
	cfg.Trials = 10
	tables, err := Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, "fig7a", "fig7b")
	// Weighted cut beats unweighted beats Direct on average over the sweep
	// (the paper's headline ordering; individual points can tie at this
	// trial count).
	var w, u, d float64
	for _, p := range tables[0].Points {
		w += p.Values[SeriesPCWeighted]
		u += p.Values[SeriesPCUnweighted]
		d += p.Values[SeriesDirect]
	}
	if !(w < u && u < d) {
		t.Fatalf("ordering violated: PC-W=%v PC-U=%v Direct=%v", w, u, d)
	}
}

func TestFigure8(t *testing.T) {
	cfg := fastConfig()
	cfg.Trials = 3
	tables, err := Figure8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, "fig8a", "fig8b")
	// PrivateClean beats Direct on the FD experiment at every corruption
	// level.
	for _, p := range tables[0].Points {
		if p.Values[SeriesPrivateClean] >= p.Values[SeriesDirect] {
			t.Fatalf("fig8a: PrivateClean (%v) should beat Direct (%v) at x=%v",
				p.Values[SeriesPrivateClean], p.Values[SeriesDirect], p.X)
		}
	}
}

func TestFigure9(t *testing.T) {
	tables, err := Figure9(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, "fig9a", "fig9b")
	// Accuracy degrades from the low-distinct regime to the high-distinct
	// regime (the paper's headline for this figure).
	pts := tables[1].Points
	if pts[0].Values[SeriesPrivateClean] >= pts[len(pts)-1].Values[SeriesPrivateClean] {
		t.Fatalf("fig9: error should grow with distinct fraction: %v -> %v",
			pts[0].Values[SeriesPrivateClean], pts[len(pts)-1].Values[SeriesPrivateClean])
	}
}

func TestFigure10(t *testing.T) {
	cfg := fastConfig()
	cfg.Trials = 3
	tables, err := Figure10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, "fig10a", "fig10b")
	// The dirty-no-privacy reference is constant across p.
	ref := tables[0].Points[0].Values[SeriesDirtyNoPriv]
	for _, p := range tables[0].Points {
		if p.Values[SeriesDirtyNoPriv] != ref {
			t.Fatal("dirty reference should not depend on p")
		}
	}
	// At high privacy the cleaned private count is still better than the
	// dirty original (the paper's counter-intuitive crossover).
	last := tables[0].Points[len(tables[0].Points)-1]
	if last.Values[SeriesPrivateClean] >= ref {
		t.Fatalf("cleaned private (%v) should beat dirty (%v)", last.Values[SeriesPrivateClean], ref)
	}
}

func TestFigure11(t *testing.T) {
	cfg := fastConfig()
	cfg.Trials = 3
	tables, err := Figure11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, "fig11a", "fig11b")
}

func TestTheorem2Validation(t *testing.T) {
	cfg := fastConfig()
	cfg.Trials = 40
	tb, err := Theorem2Validation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tb.ID != "thm2" || len(tb.Points) == 0 {
		t.Fatalf("thm2 = %+v", tb)
	}
	for _, p := range tb.Points {
		emp := p.Values["empirical P[all] %"]
		target := p.Values["target %"]
		// Allow sampling slack below the target at 40 trials.
		if emp < target-10 {
			t.Fatalf("%s: empirical %v far below target %v", p.Label, emp, target)
		}
	}
}

func TestTunerValidation(t *testing.T) {
	cfg := fastConfig()
	cfg.Trials = 20
	tb, err := TunerValidation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tb.ID != "tuner" {
		t.Fatalf("tuner = %+v", tb)
	}
	for _, p := range tb.Points {
		if p.Values["within target %"] < 80 {
			t.Fatalf("target %v held only %v%% of the time", p.X, p.Values["within target %"])
		}
		if p.Values["tuned p"] <= 0 || p.Values["tuned p"] >= 1 {
			t.Fatalf("tuned p = %v", p.Values["tuned p"])
		}
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in short mode")
	}
	cfg := fastConfig()
	cfg.Trials = 2
	tables, err := All(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) < 20 {
		t.Fatalf("All returned %d tables", len(tables))
	}
	seen := map[string]bool{}
	for _, tb := range tables {
		if seen[tb.ID] {
			t.Fatalf("duplicate table id %q", tb.ID)
		}
		seen[tb.ID] = true
	}
}

func TestTableFormatAlignment(t *testing.T) {
	tb := &Table{
		ID: "x", Title: "T", XLabel: "x",
		Series: []string{"a", "b"},
		Points: []Point{
			{X: 1, Values: map[string]float64{"a": 1.23456, "b": 2}},
			{Label: "custom", Values: map[string]float64{"a": 3}},
		},
	}
	out := tb.Format()
	if !strings.Contains(out, "custom") {
		t.Fatalf("missing label row:\n%s", out)
	}
	if !strings.Contains(out, "1.2346") {
		t.Fatalf("missing rounded value:\n%s", out)
	}
	// Missing series renders as "-".
	if !strings.Contains(out, "-") {
		t.Fatalf("missing placeholder:\n%s", out)
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1.5:    "1.5",
		2:      "2",
		0:      "0",
		0.1234: "0.1234",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestPickValues(t *testing.T) {
	rng := trialRNG(1, 0, 0)
	dom := []string{"a", "b", "c"}
	got := pickValues(rng, dom, 5)
	if len(got) != 3 {
		t.Fatalf("pickValues should clamp: %v", got)
	}
	got = pickValues(rng, dom, 2)
	if len(got) != 2 || got[0] >= got[1] {
		t.Fatalf("pickValues should sort: %v", got)
	}
}
