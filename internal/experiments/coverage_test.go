package experiments

import (
	"strings"
	"testing"
)

func TestCoverageValidation(t *testing.T) {
	cfg := fastConfig()
	cfg.Trials = 25
	tb, err := CoverageValidation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tb.ID != "coverage" || len(tb.Points) == 0 {
		t.Fatalf("table = %+v", tb)
	}
	for _, p := range tb.Points {
		// With conservative intervals, coverage should comfortably exceed
		// 85% even at 25 trials.
		for _, s := range []string{SeriesCountCoverage, SeriesSumCoverage} {
			if p.Values[s] < 85 {
				t.Fatalf("%s = %v at p=%v", s, p.Values[s], p.X)
			}
		}
	}
}

func TestTableFormatCSVAndJSON(t *testing.T) {
	tb := &Table{
		ID: "x", Title: "T", XLabel: "x",
		Series: []string{"a", "b"},
		Points: []Point{
			{X: 0.5, Values: map[string]float64{"a": 1.5}},
			{Label: "row", Values: map[string]float64{"a": 2, "b": 3}},
		},
	}
	csvOut := tb.FormatCSV()
	if csvOut != "x,a,b\n0.5,1.5,\nrow,2,3\n" {
		t.Fatalf("csv = %q", csvOut)
	}
	data, err := tb.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"id":"x"`, `"label":"row"`, `"values"`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("json %s missing %q", data, want)
		}
	}
}

func TestPerfProfile(t *testing.T) {
	cfg := fastConfig()
	tb, err := PerfProfile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tb.ID != "perf" || len(tb.Points) != 3 {
		t.Fatalf("table = %+v", tb)
	}
	for _, p := range tb.Points {
		for _, s := range tb.Series {
			if p.Values[s] < 0 {
				t.Fatalf("negative latency %v for %s", p.Values[s], s)
			}
		}
	}
}

func TestTableChart(t *testing.T) {
	tb := &Table{
		ID: "c", Title: "C", XLabel: "x",
		Series: []string{"a"},
		Points: []Point{
			{X: 1, Values: map[string]float64{"a": 10}},
			{X: 2, Values: map[string]float64{"a": 5}},
		},
	}
	out := tb.Chart()
	if !strings.Contains(out, "#") || !strings.Contains(out, "-- a (max 10) --") {
		t.Fatalf("chart = %q", out)
	}
	empty := &Table{ID: "e", Title: "E", XLabel: "x", Series: []string{"a"}}
	if !strings.Contains(empty.Chart(), "no data") {
		t.Fatal("empty chart should say so")
	}
}

func TestPrivacyUtilityTradeoff(t *testing.T) {
	cfg := fastConfig()
	cfg.Trials = 15
	tb, err := PrivacyUtilityTradeoff(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tb.ID != "tradeoff" || len(tb.Points) == 0 {
		t.Fatalf("table = %+v", tb)
	}
	// Attacker advantage strictly decreases with p; epsilon too.
	for i := 1; i < len(tb.Points); i++ {
		prev, cur := tb.Points[i-1], tb.Points[i]
		if cur.Values["attacker advantage %"] >= prev.Values["attacker advantage %"] {
			t.Fatalf("advantage not decreasing at p=%v", cur.X)
		}
		if cur.Values["epsilon"] >= prev.Values["epsilon"] {
			t.Fatalf("epsilon not decreasing at p=%v", cur.X)
		}
	}
	// Query error at the most private point exceeds the least private.
	first, last := tb.Points[0], tb.Points[len(tb.Points)-1]
	if last.Values["count error % (PrivateClean)"] <= first.Values["count error % (PrivateClean)"] {
		t.Fatalf("error should grow with p: %v -> %v",
			first.Values["count error % (PrivateClean)"], last.Values["count error % (PrivateClean)"])
	}
}
