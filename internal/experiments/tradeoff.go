package experiments

import (
	"privateclean/internal/estimator"
	"privateclean/internal/privacy"
	"privateclean/internal/stats"
	"privateclean/internal/workload"
)

// PrivacyUtilityTradeoff puts both axes of the paper's tradeoff in one
// table: as p grows, the attacker's advantage (how much better than the
// uniform prior a believe-the-release attack identifies a row's true
// value) falls toward zero while the PrivateClean query error grows. The
// provider picks the operating point; Theorem 2 and the Appendix E tuner
// are the paper's tools for doing so.
func PrivacyUtilityTradeoff(cfg Config) (*Table, error) {
	ps := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9}
	t := &Table{
		ID:     "tradeoff",
		Title:  "Privacy/utility tradeoff: attacker advantage vs query error",
		XLabel: "p",
		Series: []string{"attacker advantage %", "epsilon", "count error % (PrivateClean)"},
	}
	for _, p := range ps {
		adv, err := privacy.AttackerAdvantage(p, cfg.N)
		if err != nil {
			return nil, err
		}
		col := newCollector()
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := trialRNG(cfg.Seed+18000, 0, trial)
			r, err := workload.Synthetic(rng, workload.SyntheticConfig{S: cfg.S, N: cfg.N, Z: cfg.Z})
			if err != nil {
				return nil, err
			}
			v, meta, err := privacy.Privatize(rng, r, privacy.Uniform(r.Schema(), p, cfg.B))
			if err != nil {
				return nil, err
			}
			pred := estimator.In("category", pickValues(rng, meta.Discrete["category"].Domain, cfg.L)...)
			truth, err := estimator.DirectCount(r, pred)
			if err != nil {
				return nil, err
			}
			est := &estimator.Estimator{Meta: meta}
			got, err := est.Count(v, pred)
			if err != nil {
				return nil, err
			}
			col.add(SeriesPrivateClean, stats.RelativeError(got.Value, truth))
		}
		errPct := col.meanPct()[SeriesPrivateClean]
		t.Points = append(t.Points, Point{X: p, Values: map[string]float64{
			"attacker advantage %":         adv * 100,
			"epsilon":                      privacy.EpsilonDiscrete(p),
			"count error % (PrivateClean)": errPct,
		}})
	}
	return t, nil
}
