package experiments

import (
	"fmt"
	"math"

	"privateclean/internal/estimator"
	"privateclean/internal/privacy"
	"privateclean/internal/stats"
	"privateclean/internal/workload"
)

// Theorem2Validation reproduces the Theorem 2 dataset-size analysis
// (Section 4.3 and Example 3): for each (N, p, alpha) setting it reports the
// analytic bound on the dataset size S and the empirically measured
// domain-preservation probability at that size, which should be at least
// 1 - alpha.
//
// The empirical check uses the theorem's worst-case construction: one
// domain value present exactly once, the remaining S-1 rows spread over the
// other N-1 values.
func Theorem2Validation(cfg Config) (*Table, error) {
	type setting struct {
		n     int
		p     float64
		alpha float64
	}
	settings := []setting{
		{25, 0.25, 0.05}, // Example 3, 95% confidence
		{25, 0.25, 0.01}, // Example 3, 99% confidence
		{50, 0.1, 0.05},  // Table 1 defaults
		{50, 0.5, 0.05},
		{100, 0.25, 0.05},
	}
	t := &Table{
		ID:     "thm2",
		Title:  "Theorem 2: dataset size bound S > (N/p) log(pN/alpha) vs empirical domain preservation",
		XLabel: "setting",
		Series: []string{"bound S", "empirical P[all] %", "target %"},
	}
	for i, s := range settings {
		bound, err := privacy.MinDatasetSize(s.n, s.p, s.alpha)
		if err != nil {
			return nil, err
		}
		size := int(math.Ceil(bound))
		preserved := 0
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := trialRNG(cfg.Seed+12000, i, trial)
			// Worst-case construction from the Theorem 2 proof.
			col := make([]string, size)
			col[0] = workload.CategoryValue(0)
			for j := 1; j < size; j++ {
				col[j] = workload.CategoryValue(1 + rng.Intn(s.n-1))
			}
			domain := make([]string, s.n)
			for k := range domain {
				domain[k] = workload.CategoryValue(k)
			}
			priv, err := privacy.RandomizedResponse(rng, col, domain, s.p)
			if err != nil {
				return nil, err
			}
			seen := make(map[string]bool, s.n)
			for _, v := range priv {
				seen[v] = true
			}
			if len(seen) == s.n {
				preserved++
			}
		}
		t.Points = append(t.Points, Point{
			Label: fmt.Sprintf("N=%d p=%v alpha=%v", s.n, s.p, s.alpha),
			Values: map[string]float64{
				"bound S":            float64(size),
				"empirical P[all] %": 100 * float64(preserved) / float64(cfg.Trials),
				"target %":           100 * (1 - s.alpha),
			},
		})
	}
	return t, nil
}

// TunerValidation exercises the Appendix E parameter-tuning algorithm: for
// each target count-query error it derives p via Tune, runs randomized
// count queries on tuned private relations, and reports the observed
// fraction error |c_hat - c|/S against the target, which should hold for
// ~95% of queries.
func TunerValidation(cfg Config) (*Table, error) {
	targets := []float64{0.05, 0.1, 0.15, 0.2}
	t := &Table{
		ID:     "tuner",
		Title:  "Appendix E tuner: target count error vs tuned p and observed error",
		XLabel: "target error",
		Series: []string{"tuned p", "mean |s_hat - s|", "p95 |s_hat - s|", "within target %"},
	}
	for i, target := range targets {
		var tunedP float64
		var errsFrac []float64
		within := 0
		total := 0
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := trialRNG(cfg.Seed+13000, i, trial)
			r, err := workload.Synthetic(rng, workload.SyntheticConfig{S: cfg.S, N: cfg.N, Z: cfg.Z})
			if err != nil {
				return nil, err
			}
			params, err := privacy.Tune(r, target, cfg.Confidence)
			if err != nil {
				return nil, err
			}
			tunedP = params.P["category"]
			v, meta, err := privacy.Privatize(rng, r, params)
			if err != nil {
				return nil, err
			}
			domain := meta.Discrete["category"].Domain
			pred := estimator.In("category", pickValues(rng, domain, cfg.L)...)
			truth, err := estimator.DirectCount(r, pred)
			if err != nil {
				return nil, err
			}
			est := &estimator.Estimator{Meta: meta, Confidence: cfg.Confidence}
			got, err := est.Count(v, pred)
			if err != nil {
				return nil, err
			}
			frac := math.Abs(got.Value-truth) / float64(cfg.S)
			errsFrac = append(errsFrac, frac)
			total++
			if frac <= target {
				within++
			}
		}
		mean, err := stats.MeanFinite(errsFrac)
		if err != nil {
			return nil, err
		}
		p95, err := stats.Quantile(errsFrac, 0.95)
		if err != nil {
			return nil, err
		}
		t.Points = append(t.Points, Point{
			X: target,
			Values: map[string]float64{
				"tuned p":          tunedP,
				"mean |s_hat - s|": mean,
				"p95 |s_hat - s|":  p95,
				"within target %":  100 * float64(within) / float64(total),
			},
		})
	}
	return t, nil
}

// All runs every experiment and returns the tables in paper order. It is
// the driver behind cmd/experiments and the benchmark harness.
func All(cfg Config) ([]*Table, error) {
	var out []*Table
	out = append(out, DefaultParams())
	for _, f := range []func(Config) ([]*Table, error){
		Figure2, Figure3, Figure4, Figure5, Figure6, Figure7, Figure8, Figure9, Figure10, Figure11,
	} {
		tables, err := f(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, tables...)
	}
	thm2, err := Theorem2Validation(cfg)
	if err != nil {
		return nil, err
	}
	out = append(out, thm2)
	tuner, err := TunerValidation(cfg)
	if err != nil {
		return nil, err
	}
	out = append(out, tuner)
	return out, nil
}
