package experiments

import (
	"privateclean/internal/estimator"
	"privateclean/internal/privacy"
	"privateclean/internal/workload"
)

// Coverage series names.
const (
	SeriesCountCoverage = "count coverage %"
	SeriesSumCoverage   = "sum coverage %"
	SeriesAvgCoverage   = "avg coverage %"
)

// CoverageValidation empirically checks the Section 5 confidence intervals:
// for each privacy level p it measures how often the nominal 95% intervals
// of the count, sum, and avg estimators cover the true (non-private) query
// result. Asymptotically the rate should be at least the nominal level
// (the count/sum intervals use the conservative 1/(1-p) inflation, so
// over-coverage is expected).
func CoverageValidation(cfg Config) (*Table, error) {
	ps := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5}
	t := &Table{
		ID:     "coverage",
		Title:  "CI validation: empirical coverage of the nominal 95% intervals",
		XLabel: "p",
		Series: []string{SeriesCountCoverage, SeriesSumCoverage, SeriesAvgCoverage},
	}
	for _, p := range ps {
		var countCov, sumCov, avgCov, total float64
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := trialRNG(cfg.Seed+16000, 0, trial)
			r, err := workload.Synthetic(rng, workload.SyntheticConfig{S: cfg.S, N: cfg.N, Z: cfg.Z})
			if err != nil {
				return nil, err
			}
			v, meta, err := privacy.Privatize(rng, r, privacy.Uniform(r.Schema(), p, cfg.B))
			if err != nil {
				return nil, err
			}
			domain := meta.Discrete["category"].Domain
			pred := estimator.In("category", pickValues(rng, domain, cfg.L)...)
			truthCount, err := estimator.DirectCount(r, pred)
			if err != nil {
				return nil, err
			}
			truthSum, err := estimator.DirectSum(r, "value", pred)
			if err != nil {
				return nil, err
			}
			est := &estimator.Estimator{Meta: meta, Confidence: 0.95}
			c, err := est.Count(v, pred)
			if err != nil {
				return nil, err
			}
			h, err := est.Sum(v, "value", pred)
			if err != nil {
				return nil, err
			}
			total++
			if c.Lo() <= truthCount && truthCount <= c.Hi() {
				countCov++
			}
			if h.Lo() <= truthSum && truthSum <= h.Hi() {
				sumCov++
			}
			if truthCount > 0 {
				truthAvg := truthSum / truthCount
				if av, err := est.Avg(v, "value", pred); err == nil {
					if av.Lo() <= truthAvg && truthAvg <= av.Hi() {
						avgCov++
					}
				}
			}
		}
		t.Points = append(t.Points, Point{X: p, Values: map[string]float64{
			SeriesCountCoverage: 100 * countCov / total,
			SeriesSumCoverage:   100 * sumCov / total,
			SeriesAvgCoverage:   100 * avgCov / total,
		}})
	}
	return t, nil
}
