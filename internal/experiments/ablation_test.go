package experiments

import "testing"

func TestAblationSumComplement(t *testing.T) {
	cfg := fastConfig()
	cfg.Trials = 10
	tb, err := AblationSumComplement(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tb.ID != "abl-sum" || len(tb.Points) == 0 {
		t.Fatalf("table = %+v", tb)
	}
	// The full estimator beats the false-positive-blind variant at every
	// correlation level.
	for _, p := range tb.Points {
		full := p.Values[SeriesSumComplement]
		naive := p.Values[SeriesSumNaive]
		if full >= naive {
			t.Fatalf("at corr=%v: full %v should beat naive %v", p.X, full, naive)
		}
	}
}

func TestAblationProvenanceCost(t *testing.T) {
	cfg := fastConfig()
	tb, err := AblationProvenanceCost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tb.ID != "abl-prov" || len(tb.Points) == 0 {
		t.Fatalf("table = %+v", tb)
	}
	for _, p := range tb.Points {
		ff := p.Values["fork-free edges/value"]
		w := p.Values["weighted edges/value"]
		// Proposition 3: a fork-free graph stores at most one edge per
		// dirty value.
		if ff > 1.0001 {
			t.Fatalf("fork-free density %v > 1 at rate %v", ff, p.X)
		}
		// The weighted graph fans out beyond one edge per value.
		if w <= 1 {
			t.Fatalf("weighted density %v should exceed 1 at rate %v", w, p.X)
		}
	}
}
