// Package csvio loads and stores relations as CSV files with a header row.
// It is the I/O substrate for the CLI and the examples.
//
// On load, column kinds are inferred: a column whose every non-empty cell
// parses as a float becomes numeric, everything else discrete. Callers can
// force kinds per column. Empty cells become NaN (numeric) or relation.Null
// (discrete).
//
// Loading is hardened for provider-side use: a UTF-8 BOM is stripped,
// duplicate and empty headers are rejected with typed errors, and malformed
// rows (wrong arity, unparsable or non-finite forced-numeric cells, CSV
// quoting errors) are handled under a configurable per-row policy — fail the
// whole load, skip and count, or quarantine the raw row to a sidecar writer.
// Writes go through temp-file+atomic-rename so a crash never leaves a
// half-written artifact.
package csvio

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"

	"privateclean/internal/atomicio"
	"privateclean/internal/faults"
	"privateclean/internal/relation"
	"privateclean/internal/telemetry"
)

// RowErrorPolicy selects what happens to a malformed data row.
type RowErrorPolicy int

const (
	// RowErrorFail aborts the load with a typed faults.ErrBadInput. The
	// default: a privacy mechanism should not silently drop records.
	RowErrorFail RowErrorPolicy = iota
	// RowErrorSkip drops the malformed row and counts it in the Report.
	RowErrorSkip
	// RowErrorQuarantine drops the row, counts it, and writes it with its
	// position and reason to Options.Quarantine.
	RowErrorQuarantine
)

// String renders the policy as its CLI flag value.
func (p RowErrorPolicy) String() string {
	switch p {
	case RowErrorFail:
		return "fail"
	case RowErrorSkip:
		return "skip"
	case RowErrorQuarantine:
		return "quarantine"
	}
	return fmt.Sprintf("RowErrorPolicy(%d)", int(p))
}

// ParseRowErrorPolicy parses a CLI flag value into a policy.
func ParseRowErrorPolicy(s string) (RowErrorPolicy, error) {
	switch s {
	case "fail", "":
		return RowErrorFail, nil
	case "skip":
		return RowErrorSkip, nil
	case "quarantine":
		return RowErrorQuarantine, nil
	}
	return 0, faults.Errorf(faults.ErrUsage, "csvio: unknown row-error policy %q (want fail, skip, or quarantine)", s)
}

// Options controls CSV loading.
type Options struct {
	// ForceKinds overrides the inferred kind for the named columns.
	ForceKinds map[string]relation.Kind
	// OnRowError selects the per-row error policy (default RowErrorFail).
	OnRowError RowErrorPolicy
	// Quarantine receives malformed rows under RowErrorQuarantine, as CSV
	// records of the form (physical row number, reason, original fields...).
	// Required when OnRowError is RowErrorQuarantine.
	Quarantine io.Writer
	// Tel supplies telemetry sinks for load accounting; nil falls back to
	// telemetry.Default(). Only counts, reason codes, and header names reach
	// telemetry — never row contents.
	Tel *telemetry.Set
}

// RowError describes one malformed data row.
type RowError struct {
	// Row is the 1-based physical row number in the source (header = 1).
	Row int
	// Reason says what was wrong with it.
	Reason string
}

// maxReportedRows caps the per-row detail kept in a Report so a pathological
// input cannot balloon memory; the counters always cover every row.
const maxReportedRows = 100

// Report summarizes a load: how many rows were kept and what happened to the
// ones that were not.
type Report struct {
	// Rows is the number of data rows kept in the relation.
	Rows int
	// Skipped counts rows dropped under RowErrorSkip.
	Skipped int
	// Quarantined counts rows diverted under RowErrorQuarantine.
	Quarantined int
	// BadRows details the first maxReportedRows malformed rows.
	BadRows []RowError
}

// Clean reports whether every source row made it into the relation.
func (rep *Report) Clean() bool { return rep.Skipped == 0 && rep.Quarantined == 0 }

// Read loads a relation from CSV data with a header row.
func Read(r io.Reader, opts Options) (*relation.Relation, error) {
	rel, _, err := ReadWithReport(r, opts)
	return rel, err
}

// ReadWithReport is Read with a per-row accounting of skipped and
// quarantined rows. The report is non-nil whenever the error is nil.
func ReadWithReport(r io.Reader, opts Options) (*relation.Relation, *Report, error) {
	if opts.OnRowError == RowErrorQuarantine && opts.Quarantine == nil {
		return nil, nil, faults.Errorf(faults.ErrUsage, "csvio: quarantine policy needs a quarantine writer")
	}
	br := bufio.NewReader(r)
	if head, err := br.Peek(3); err == nil && bytes.Equal(head, []byte{0xEF, 0xBB, 0xBF}) {
		br.Discard(3) // UTF-8 BOM
	}
	cr := csv.NewReader(br)
	cr.TrimLeadingSpace = true
	cr.FieldsPerRecord = -1 // arity enforced below, under the row policy

	header, err := cr.Read()
	if err == io.EOF {
		return nil, nil, faults.Errorf(faults.ErrBadInput, "csvio: missing header row")
	}
	if err != nil {
		return nil, nil, faults.Wrap(faults.ErrBadInput, fmt.Errorf("csvio: header: %w", err))
	}
	seen := make(map[string]bool, len(header))
	for i, name := range header {
		if name == "" {
			return nil, nil, faults.Errorf(faults.ErrBadInput, "csvio: empty name for header column %d", i+1)
		}
		if seen[name] {
			return nil, nil, faults.Errorf(faults.ErrBadInput, "csvio: duplicate header column %q", name)
		}
		seen[name] = true
	}

	tel := opts.Tel
	if tel == nil {
		tel = telemetry.Default()
	}
	// Header names are schema metadata, not data: telemetry may show them.
	tel.Redact.Allow(header...)

	rep := &Report{}
	var quarantine *csv.Writer
	if opts.Quarantine != nil {
		quarantine = csv.NewWriter(opts.Quarantine)
	}
	// reject applies the row policy to one malformed row; code is the
	// vocabulary-safe reason class (arity, syntax, bad_numeric) telemetry
	// carries in place of the full reason text, which may quote cells. It
	// returns a non-nil error only under RowErrorFail.
	reject := func(row int, fields []string, code, reason string) error {
		tel.Metrics.Counter("privateclean_csv_rows_malformed_total",
			"Malformed CSV rows encountered, by reason code and policy.",
			telemetry.L("code", code), telemetry.L("policy", opts.OnRowError.String())).Inc()
		tel.Log.Debug("malformed row", "row", row, "code", code, "policy", opts.OnRowError.String())
		switch opts.OnRowError {
		case RowErrorFail:
			return faults.Errorf(faults.ErrBadInput, "csvio: row %d: %s", row, reason)
		case RowErrorSkip:
			rep.Skipped++
		case RowErrorQuarantine:
			rep.Quarantined++
			record := append([]string{strconv.Itoa(row), reason}, fields...)
			if err := quarantine.Write(record); err != nil {
				return faults.Wrap(faults.ErrPartialWrite, fmt.Errorf("csvio: quarantine: %w", err))
			}
		}
		if len(rep.BadRows) < maxReportedRows {
			rep.BadRows = append(rep.BadRows, RowError{Row: row, Reason: reason})
		}
		return nil
	}

	var rows [][]string
	var rowNums []int // physical row number per kept row, for later parse errors
	physical := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		physical++
		if err != nil {
			var pe *csv.ParseError
			if errors.As(err, &pe) {
				// Row-local quoting error: the policy decides.
				if rerr := reject(physical, nil, "syntax", fmt.Sprintf("csv syntax: %v", pe.Err)); rerr != nil {
					return nil, nil, rerr
				}
				continue
			}
			// Stream-level failure (the reader itself died): never skippable.
			return nil, nil, faults.Wrap(faults.ErrBadInput, fmt.Errorf("csvio: row %d: %w", physical, err))
		}
		if len(rec) != len(header) {
			reason := fmt.Sprintf("has %d fields, header has %d", len(rec), len(header))
			if rerr := reject(physical, rec, "arity", reason); rerr != nil {
				return nil, nil, rerr
			}
			continue
		}
		rows = append(rows, rec)
		rowNums = append(rowNums, physical)
	}

	// Infer kinds from the kept rows.
	kinds := make([]relation.Kind, len(header))
	for c, name := range header {
		if k, ok := opts.ForceKinds[name]; ok {
			kinds[c] = k
			continue
		}
		kinds[c] = relation.Numeric
		seenVal := false
		for _, row := range rows {
			if row[c] == "" {
				continue
			}
			seenVal = true
			if _, err := strconv.ParseFloat(row[c], 64); err != nil {
				kinds[c] = relation.Discrete
				break
			}
		}
		if !seenVal {
			kinds[c] = relation.Discrete
		}
	}

	// Validate numeric cells row-major so the row policy can still drop a
	// row whose forced-numeric cell does not parse, or whose value is an
	// explicit ±Inf (poison for every downstream aggregate). "NaN" stays
	// accepted as the missing-value sentinel the writer emits.
	clean := rows[:0]
rowLoop:
	for i, row := range rows {
		for c, name := range header {
			if kinds[c] != relation.Numeric || row[c] == "" {
				continue
			}
			v, err := strconv.ParseFloat(row[c], 64)
			reason := ""
			switch {
			case err != nil:
				reason = fmt.Sprintf("column %q: %v", name, err)
			case math.IsInf(v, 0):
				reason = fmt.Sprintf("column %q: non-finite value %q", name, row[c])
			default:
				continue
			}
			if rerr := reject(rowNums[i], row, "bad_numeric", reason); rerr != nil {
				return nil, nil, rerr
			}
			continue rowLoop
		}
		clean = append(clean, row)
	}
	rows = clean

	if quarantine != nil {
		quarantine.Flush()
		if err := quarantine.Error(); err != nil {
			return nil, nil, faults.Wrap(faults.ErrPartialWrite, fmt.Errorf("csvio: quarantine: %w", err))
		}
	}

	cols := make([]relation.Column, len(header))
	for c, name := range header {
		cols[c] = relation.Column{Name: name, Kind: kinds[c]}
	}
	schema, err := relation.NewSchema(cols...)
	if err != nil {
		return nil, nil, faults.Wrap(faults.ErrBadInput, fmt.Errorf("csvio: %w", err))
	}

	numeric := make(map[string][]float64)
	discrete := make(map[string][]string)
	for c, name := range header {
		switch kinds[c] {
		case relation.Numeric:
			vals := make([]float64, len(rows))
			for i, row := range rows {
				if row[c] == "" {
					vals[i] = math.NaN()
					continue
				}
				// Validated above; a failure here is a bug, not bad input.
				v, err := strconv.ParseFloat(row[c], 64)
				if err != nil {
					return nil, nil, faults.Errorf(faults.ErrInternal, "csvio: validated cell failed to parse: %v", err)
				}
				vals[i] = v
			}
			numeric[name] = vals
		case relation.Discrete:
			vals := make([]string, len(rows))
			for i, row := range rows {
				if row[c] == "" {
					vals[i] = relation.Null
					continue
				}
				vals[i] = row[c]
			}
			discrete[name] = vals
		}
	}
	rel, err := relation.FromColumns(schema, numeric, discrete)
	if err != nil {
		return nil, nil, faults.Wrap(faults.ErrInternal, fmt.Errorf("csvio: %w", err))
	}
	rep.Rows = rel.NumRows()
	tel.Metrics.Counter("privateclean_csv_rows_total", "Rows kept from CSV loads.").Add(float64(rep.Rows))
	tel.Metrics.Histogram("privateclean_csv_rows_per_load", "Kept rows per CSV load.",
		telemetry.RowBuckets).Observe(float64(rep.Rows))
	if !rep.Clean() {
		tel.Log.Warn("lossy CSV load", "rows", rep.Rows, "skipped", rep.Skipped,
			"quarantined", rep.Quarantined, "policy", opts.OnRowError.String())
	}
	return rel, rep, nil
}

// ReadFile loads a relation from a CSV file.
func ReadFile(path string, opts Options) (*relation.Relation, error) {
	rel, _, err := ReadFileWithReport(path, opts)
	return rel, err
}

// ReadFileWithReport is ReadWithReport over a file.
func ReadFileWithReport(path string, opts Options) (*relation.Relation, *Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, faults.Wrap(faults.ErrBadInput, fmt.Errorf("csvio: %w", err))
	}
	defer f.Close()
	return ReadWithReport(f, opts)
}

// Write stores a relation as CSV with a header row. NaN numeric cells are
// written as the literal "NaN" and Null discrete cells as relation.Null
// ("NULL") — explicit sentinels rather than empty cells, because a
// fully-empty row (possible for single-column relations) would be silently
// skipped by CSV readers and break the round trip.
func Write(w io.Writer, rel *relation.Relation) error {
	cw := csv.NewWriter(w)
	cols := rel.Schema().Columns()
	header := make([]string, len(cols))
	for i, c := range cols {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("csvio: %w", err)
	}
	record := make([]string, len(cols))
	for i := 0; i < rel.NumRows(); i++ {
		if err := FormatRow(rel, cols, i, record); err != nil {
			return err
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("csvio: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("csvio: %w", err)
	}
	return nil
}

// FormatRow renders row i of the relation into record (len == len(cols)),
// using Write's cell conventions. It is exported so the chunked pipeline can
// emit exactly the bytes Write would.
func FormatRow(rel *relation.Relation, cols []relation.Column, i int, record []string) error {
	if len(record) != len(cols) {
		return faults.Errorf(faults.ErrInternal, "csvio: record has %d cells for %d columns", len(record), len(cols))
	}
	for c, col := range cols {
		switch col.Kind {
		case relation.Numeric:
			record[c] = strconv.FormatFloat(rel.MustNumeric(col.Name)[i], 'g', -1, 64)
		case relation.Discrete:
			record[c] = rel.MustDiscrete(col.Name)[i]
		}
	}
	return nil
}

// Header returns the header record Write would emit for the relation.
func Header(rel *relation.Relation) []string {
	cols := rel.Schema().Columns()
	header := make([]string, len(cols))
	for i, c := range cols {
		header[i] = c.Name
	}
	return header
}

/// WriteFile stores a relation as a CSV file, atomically: the data is staged
// in a temp file in the same directory and renamed into place, so a crash
// mid-write never leaves a truncated view on disk.
func WriteFile(path string, rel *relation.Relation) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		return Write(w, rel)
	})
}

// QuarantineFileSuffix is the conventional sidecar name: quarantined rows of
// "x.csv" land in "x.csv.quarantine" unless the caller chooses otherwise.
const QuarantineFileSuffix = ".quarantine"
