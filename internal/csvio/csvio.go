// Package csvio loads and stores relations as CSV files with a header row.
// It is the I/O substrate for the CLI and the examples.
//
// On load, column kinds are inferred: a column whose every non-empty cell
// parses as a float becomes numeric, everything else discrete. Callers can
// force kinds per column. Empty cells become NaN (numeric) or relation.Null
// (discrete).
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"

	"privateclean/internal/relation"
)

// Options controls CSV loading.
type Options struct {
	// ForceKinds overrides the inferred kind for the named columns.
	ForceKinds map[string]relation.Kind
}

// Read loads a relation from CSV data with a header row.
func Read(r io.Reader, opts Options) (*relation.Relation, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("csvio: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("csvio: missing header row")
	}
	header := records[0]
	rows := records[1:]

	// Infer kinds.
	kinds := make([]relation.Kind, len(header))
	for c, name := range header {
		if k, ok := opts.ForceKinds[name]; ok {
			kinds[c] = k
			continue
		}
		kinds[c] = relation.Numeric
		seen := false
		for _, row := range rows {
			if c >= len(row) || row[c] == "" {
				continue
			}
			seen = true
			if _, err := strconv.ParseFloat(row[c], 64); err != nil {
				kinds[c] = relation.Discrete
				break
			}
		}
		if !seen {
			kinds[c] = relation.Discrete
		}
	}

	cols := make([]relation.Column, len(header))
	for c, name := range header {
		cols[c] = relation.Column{Name: name, Kind: kinds[c]}
	}
	schema, err := relation.NewSchema(cols...)
	if err != nil {
		return nil, fmt.Errorf("csvio: %w", err)
	}

	numeric := make(map[string][]float64)
	discrete := make(map[string][]string)
	for c, name := range header {
		switch kinds[c] {
		case relation.Numeric:
			vals := make([]float64, len(rows))
			for i, row := range rows {
				if c >= len(row) || row[c] == "" {
					vals[i] = math.NaN()
					continue
				}
				v, err := strconv.ParseFloat(row[c], 64)
				if err != nil {
					return nil, fmt.Errorf("csvio: row %d column %q: %w", i+2, name, err)
				}
				vals[i] = v
			}
			numeric[name] = vals
		case relation.Discrete:
			vals := make([]string, len(rows))
			for i, row := range rows {
				if c >= len(row) || row[c] == "" {
					vals[i] = relation.Null
					continue
				}
				vals[i] = row[c]
			}
			discrete[name] = vals
		}
	}
	return relation.FromColumns(schema, numeric, discrete)
}

// ReadFile loads a relation from a CSV file.
func ReadFile(path string, opts Options) (*relation.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("csvio: %w", err)
	}
	defer f.Close()
	return Read(f, opts)
}

// Write stores a relation as CSV with a header row. NaN numeric cells are
// written as the literal "NaN" and Null discrete cells as relation.Null
// ("NULL") — explicit sentinels rather than empty cells, because a
// fully-empty row (possible for single-column relations) would be silently
// skipped by CSV readers and break the round trip.
func Write(w io.Writer, rel *relation.Relation) error {
	cw := csv.NewWriter(w)
	cols := rel.Schema().Columns()
	header := make([]string, len(cols))
	for i, c := range cols {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("csvio: %w", err)
	}
	record := make([]string, len(cols))
	for i := 0; i < rel.NumRows(); i++ {
		for c, col := range cols {
			switch col.Kind {
			case relation.Numeric:
				record[c] = strconv.FormatFloat(rel.MustNumeric(col.Name)[i], 'g', -1, 64)
			case relation.Discrete:
				record[c] = rel.MustDiscrete(col.Name)[i]
			}
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("csvio: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("csvio: %w", err)
	}
	return nil
}

// WriteFile stores a relation as a CSV file.
func WriteFile(path string, rel *relation.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("csvio: %w", err)
	}
	if err := Write(f, rel); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
