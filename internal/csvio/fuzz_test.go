package csvio

import (
	"bytes"
	"strings"
	"testing"

	"privateclean/internal/relation"
)

// FuzzRead checks that arbitrary CSV input never panics the loader, and
// that anything it accepts survives a write/read round trip.
func FuzzRead(f *testing.F) {
	seeds := []string{
		"a,b\n1,x\n2,y\n",
		"major,score\nME,4.5\n,3\n",
		"only_header\n",
		"a\n\"quoted, cell\"\n",
		"a,a\n1,2\n",
		"",
		"a,b\n1\n",
		"a\n1e308\n",
		"a\nNaN\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		r, err := Read(strings.NewReader(src), Options{})
		if err != nil {
			return // rejection is fine
		}
		var buf bytes.Buffer
		if err := Write(&buf, r); err != nil {
			t.Fatalf("accepted %q but failed to write it back: %v", src, err)
		}
		// Re-read with the original schema's kinds forced, so inference
		// drift (e.g. a discrete column whose values happen to look
		// numeric) cannot fail the round trip.
		opts := Options{ForceKinds: map[string]relation.Kind{}}
		for _, c := range r.Schema().Columns() {
			opts.ForceKinds[c.Name] = c.Kind
		}
		back, err := Read(&buf, opts)
		if err != nil {
			t.Fatalf("wrote %q from %q but cannot re-read: %v", buf.String(), src, err)
		}
		if back.NumRows() != r.NumRows() {
			t.Fatalf("row count changed: %d -> %d", r.NumRows(), back.NumRows())
		}
	})
}
