package csvio

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"privateclean/internal/privacy"
	"privateclean/internal/provenance"
	"privateclean/internal/relation"
)

// FuzzRead checks that arbitrary CSV input never panics the loader, and
// that anything it accepts survives a write/read round trip.
func FuzzRead(f *testing.F) {
	seeds := []string{
		"a,b\n1,x\n2,y\n",
		"major,score\nME,4.5\n,3\n",
		"only_header\n",
		"a\n\"quoted, cell\"\n",
		"a,a\n1,2\n",
		"",
		"a,b\n1\n",
		"a\n1e308\n",
		"a\nNaN\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		r, err := Read(strings.NewReader(src), Options{})
		if err != nil {
			return // rejection is fine
		}
		var buf bytes.Buffer
		if err := Write(&buf, r); err != nil {
			t.Fatalf("accepted %q but failed to write it back: %v", src, err)
		}
		// Re-read with the original schema's kinds forced, so inference
		// drift (e.g. a discrete column whose values happen to look
		// numeric) cannot fail the round trip.
		opts := Options{ForceKinds: map[string]relation.Kind{}}
		for _, c := range r.Schema().Columns() {
			opts.ForceKinds[c.Name] = c.Kind
		}
		back, err := Read(&buf, opts)
		if err != nil {
			t.Fatalf("wrote %q from %q but cannot re-read: %v", buf.String(), src, err)
		}
		if back.NumRows() != r.NumRows() {
			t.Fatalf("row count changed: %d -> %d", r.NumRows(), back.NumRows())
		}
	})
}

// FuzzReadPolicies runs the loader under every row-error policy, checking
// that no input panics and that the policies agree: whatever the skip policy
// loads, the quarantine policy loads identically, and a clean report under
// skip implies the fail policy accepts the input too.
func FuzzReadPolicies(f *testing.F) {
	seeds := []string{
		"a,b\n1,x\n2\n3,y\n",
		"\xEF\xBB\xBFa\n1\n",
		"a\n+Inf\n",
		"a,b\n\"broken\n",
		"a,a\n1,2\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		skipRel, skipRep, skipErr := ReadWithReport(strings.NewReader(src), Options{OnRowError: RowErrorSkip})
		var sidecar bytes.Buffer
		qRel, qRep, qErr := ReadWithReport(strings.NewReader(src), Options{
			OnRowError: RowErrorQuarantine, Quarantine: &sidecar,
		})
		if (skipErr == nil) != (qErr == nil) {
			t.Fatalf("skip and quarantine disagree on acceptance: %v vs %v", skipErr, qErr)
		}
		if skipErr != nil {
			return
		}
		if skipRel.NumRows() != qRel.NumRows() || skipRep.Skipped != qRep.Quarantined {
			t.Fatalf("policies diverge: skip %d rows/%d dropped, quarantine %d rows/%d dropped",
				skipRel.NumRows(), skipRep.Skipped, qRel.NumRows(), qRep.Quarantined)
		}
		if _, failErr := Read(strings.NewReader(src), Options{}); skipRep.Clean() != (failErr == nil) {
			t.Fatalf("clean report %v but fail policy says %v", skipRep.Clean(), failErr)
		}
	})
}

// FuzzMetaJSON checks that arbitrary bytes never panic the view-metadata
// decoder, and that anything accepted and validated survives a marshal
// round trip. The metadata file crosses the provider/analyst trust boundary,
// so the decoder is fuzzed like any other untrusted input.
func FuzzMetaJSON(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"Discrete":{"major":{"Name":"major","P":0.2,"Domain":["a","b"]}},"Numeric":{},"Rows":10}`,
		`{"Discrete":{"major":{"Name":"major","P":1.5,"Domain":[]}},"Rows":-3}`,
		`{"Numeric":{"score":{"Name":"score","B":-1,"Delta":4}}}`,
		`{"Discrete":null,"Numeric":null,"Rows":0}`,
		`[1,2,3]`,
		`null`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		meta := &privacy.ViewMeta{}
		if err := json.Unmarshal(data, meta); err != nil {
			return // rejection is fine
		}
		if err := meta.Validate(); err != nil {
			return // decoded but out of range: typed rejection is fine
		}
		out, err := json.Marshal(meta)
		if err != nil {
			t.Fatalf("validated metadata failed to marshal: %v", err)
		}
		back := &privacy.ViewMeta{}
		if err := json.Unmarshal(out, back); err != nil {
			t.Fatalf("marshaled metadata failed to re-read: %v", err)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("round-tripped metadata no longer validates: %v", err)
		}
	})
}

// FuzzProvenanceJSON checks that arbitrary bytes never panic the provenance
// decoder and that accepted stores survive a marshal round trip.
func FuzzProvenanceJSON(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"graphs":{}}`,
		`{"graphs":{"major":{"attr":"major","n":2,"forked":false,"parents":{"a":{"a":1}}}}}`,
		`{"graphs":{"major":null}}`,
		`{"graphs":{"major":{"attr":"major","n":2,"parents":{"a":{"a":0.5,"b":0.6}}}}}`,
		`null`,
		`42`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		store := provenance.NewStore()
		if err := json.Unmarshal(data, store); err != nil {
			return // rejection is fine
		}
		out, err := json.Marshal(store)
		if err != nil {
			t.Fatalf("accepted provenance failed to marshal: %v", err)
		}
		back := provenance.NewStore()
		if err := json.Unmarshal(out, back); err != nil {
			t.Fatalf("marshaled provenance failed to re-read: %v", err)
		}
	})
}
