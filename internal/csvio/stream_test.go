package csvio

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"privateclean/internal/faults"
	"privateclean/internal/relation"
)

// writeTemp stages CSV text as a file for the streaming scanners.
func writeTemp(t *testing.T, text string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "in.csv")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// drain concatenates every window of an iterator into one relation via a
// builder-equivalent append, checking window sizes along the way.
func drain(t *testing.T, it *ChunkIterator, window int) *relation.Relation {
	t.Helper()
	var parts []*relation.Relation
	for {
		w, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if w.NumRows() == 0 || w.NumRows() > window {
			t.Fatalf("window of %d rows (max %d)", w.NumRows(), window)
		}
		parts = append(parts, w)
	}
	if len(parts) == 0 {
		schema := it.Schema()
		return relation.New(schema)
	}
	schema := parts[0].Schema()
	numeric := make(map[string][]float64)
	discrete := make(map[string][]string)
	for _, c := range schema.Columns() {
		for _, w := range parts {
			switch c.Kind {
			case relation.Numeric:
				numeric[c.Name] = append(numeric[c.Name], w.MustNumeric(c.Name)...)
			case relation.Discrete:
				discrete[c.Name] = append(discrete[c.Name], w.MustDiscrete(c.Name)...)
			}
		}
	}
	rel, err := relation.FromColumns(schema, numeric, discrete)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// messyInputs covers the loader's edge cases: BOM, quoting, empty cells,
// NaN sentinels, mixed kinds, arity and numeric rejects.
var messyInputs = []struct {
	name string
	text string
	opts Options
}{
	{"clean", "major,score\nCS,1.5\nME,2\nCS,3\n", Options{}},
	{"bom and quotes", "\xef\xbb\xbfname,note\nalice,\"a, quoted\nnewline\"\nbob,plain\n", Options{}},
	{"empty cells", "d,x\n,1\na,\nb,NaN\n,\n", Options{}},
	{"all empty column", "d,x\na,\nb,\n", Options{}},
	{"skip arity", "a,b\n1,2\n1,2,3\n4,5\n", Options{OnRowError: RowErrorSkip}},
	{"skip bad numeric", "a,b\n1,x1\n2,x2\nInf,x3\nz,x4\n3,x5\n", Options{OnRowError: RowErrorSkip}},
	{"skip bad numeric forced", "a,b\n1,x1\nInf,x2\nz,x3\n3,x4\n",
		Options{OnRowError: RowErrorSkip, ForceKinds: map[string]relation.Kind{"a": relation.Numeric}}},
	{"forced kinds", "a,b\n1,2\n3,4\n", Options{ForceKinds: map[string]relation.Kind{"a": relation.Discrete}}},
	{"single column", "only\nv1\n\nv2\n", Options{}},
	{"header only", "a,b\n", Options{}},
	{"numbers with exponents", "x,y\n1e3,a\n-2.5E-2,b\n0x1p4,c\n", Options{}},
}

func TestProfileMatchesReadWithReport(t *testing.T) {
	for _, tc := range messyInputs {
		t.Run(tc.name, func(t *testing.T) {
			path := writeTemp(t, tc.text)
			rel, rep, err := ReadFileWithReport(path, tc.opts)
			if err != nil {
				t.Fatalf("in-memory load: %v", err)
			}
			prof, err := ProfileFile(path, tc.opts)
			if err != nil {
				t.Fatalf("profile: %v", err)
			}
			schema, err := prof.Schema()
			if err != nil {
				t.Fatal(err)
			}
			if got, want := schema.String(), rel.Schema().String(); got != want {
				t.Fatalf("schema %q, want %q", got, want)
			}
			if prof.Rows != rel.NumRows() {
				t.Fatalf("rows %d, want %d", prof.Rows, rel.NumRows())
			}
			if prof.Report.Skipped != rep.Skipped || prof.Report.Quarantined != rep.Quarantined {
				t.Fatalf("report %+v, want %+v", prof.Report, rep)
			}
			if !reflect.DeepEqual(prof.Report.BadRows, rep.BadRows) {
				t.Fatalf("bad rows %v, want %v", prof.Report.BadRows, rep.BadRows)
			}
			for _, name := range schema.DiscreteNames() {
				want, err := rel.Domain(name)
				if err != nil {
					t.Fatal(err)
				}
				got := prof.Domains[name]
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("domain(%s) = %v, want %v", name, got, want)
				}
			}
		})
	}
}

func TestChunkIteratorMatchesReadWithReport(t *testing.T) {
	for _, tc := range messyInputs {
		for _, window := range []int{1, 2, 1000} {
			t.Run(fmt.Sprintf("%s/w%d", tc.name, window), func(t *testing.T) {
				path := writeTemp(t, tc.text)
				rel, _, err := ReadFileWithReport(path, tc.opts)
				if err != nil {
					t.Fatal(err)
				}
				prof, err := ProfileFile(path, tc.opts)
				if err != nil {
					t.Fatal(err)
				}
				it, err := NewChunkIterator(path, prof, window)
				if err != nil {
					t.Fatal(err)
				}
				defer it.Close()
				got := drain(t, it, window)
				if !got.Equal(rel) {
					t.Fatalf("streamed relation differs from in-memory load:\ngot  %v\nwant %v", got, rel)
				}
			})
		}
	}
}

func TestProfileQuarantineSameRowSet(t *testing.T) {
	text := "a,b\n1,ok\n1,2,3\nz,bad\n\"un,closed\nx\n2,fine\n"
	path := writeTemp(t, text)

	var memQ, streamQ bytes.Buffer
	_, memRep, err := ReadFileWithReport(path, Options{OnRowError: RowErrorQuarantine, Quarantine: &memQ})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := ProfileFile(path, Options{OnRowError: RowErrorQuarantine, Quarantine: &streamQ})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Report.Quarantined != memRep.Quarantined {
		t.Fatalf("quarantined %d, want %d", prof.Report.Quarantined, memRep.Quarantined)
	}
	// Sidecar ordering may differ between the modes (documented); the row
	// set must not.
	sortLines := func(b []byte) []string {
		lines := strings.Split(strings.TrimSpace(string(b)), "\n")
		for i := range lines {
			lines[i] = strings.TrimSpace(lines[i])
		}
		return lines
	}
	mem, stream := sortLines(memQ.Bytes()), sortLines(streamQ.Bytes())
	memSet := make(map[string]int)
	for _, l := range mem {
		memSet[l]++
	}
	for _, l := range stream {
		memSet[l]--
	}
	for l, n := range memSet {
		if n != 0 {
			t.Fatalf("quarantine sidecar row sets differ at %q (delta %d)\nmem: %v\nstream: %v", l, n, mem, stream)
		}
	}
}

func TestProfileFailPolicyMatchesInMemoryError(t *testing.T) {
	cases := []string{
		"a,b\n1,2\n1,2,3\n",   // arity
		"a,b\n1,2\nz,3\n",     // bad numeric (column a inferred numeric? no — z makes it discrete; use forced)
		"a,b\n\"open,2\n1,2\n", // syntax
	}
	for i, text := range cases {
		path := writeTemp(t, text)
		opts := Options{}
		if i == 1 {
			opts.ForceKinds = map[string]relation.Kind{"a": relation.Numeric}
		}
		_, _, memErr := ReadFileWithReport(path, opts)
		_, profErr := ProfileFile(path, opts)
		if (memErr == nil) != (profErr == nil) {
			t.Fatalf("case %d: memErr=%v profErr=%v", i, memErr, profErr)
		}
		if memErr == nil {
			continue
		}
		if !errors.Is(profErr, faults.ErrBadInput) {
			t.Fatalf("case %d: profile error %v not ErrBadInput", i, profErr)
		}
		if memErr.Error() != profErr.Error() {
			t.Fatalf("case %d: error text differs\nmem:    %v\nstream: %v", i, memErr, profErr)
		}
	}
}

func TestProfileHeaderErrors(t *testing.T) {
	for _, text := range []string{"", "a,,c\n1,2,3\n", "a,a\n1,2\n"} {
		path := writeTemp(t, text)
		_, _, memErr := ReadFileWithReport(path, Options{})
		_, profErr := ProfileFile(path, Options{})
		if memErr == nil || profErr == nil {
			t.Fatalf("header %q accepted: mem=%v stream=%v", text, memErr, profErr)
		}
		if memErr.Error() != profErr.Error() {
			t.Fatalf("header %q: error text differs\nmem:    %v\nstream: %v", text, memErr, profErr)
		}
	}
}

// TestChunkIteratorLargeRandomized cross-checks a generated dataset large
// enough to span many windows, with malformed rows sprinkled in.
func TestChunkIteratorLargeRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var sb strings.Builder
	sb.WriteString("cat,val,label\n")
	for i := 0; i < 5000; i++ {
		switch {
		case i%701 == 0:
			sb.WriteString("too,many,fields,here\n")
		case i%997 == 0:
			sb.WriteString("a,notanumber,x\n")
		default:
			fmt.Fprintf(&sb, "c%d,%g,l%d\n", rng.Intn(7), rng.NormFloat64()*10, rng.Intn(3))
		}
	}
	path := writeTemp(t, sb.String())
	opts := Options{OnRowError: RowErrorSkip}
	rel, rep, err := ReadFileWithReport(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped == 0 {
		t.Fatal("test input should have skipped rows")
	}
	prof, err := ProfileFile(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Rows != rel.NumRows() || prof.Report.Skipped != rep.Skipped {
		t.Fatalf("profile rows/skips %d/%d, want %d/%d", prof.Rows, prof.Report.Skipped, rel.NumRows(), rep.Skipped)
	}
	it, err := NewChunkIterator(path, prof, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if got := drain(t, it, 512); !got.Equal(rel) {
		t.Fatal("streamed relation differs from in-memory load")
	}
}
