package csvio

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"

	"privateclean/internal/faults"
	"privateclean/internal/relation"
	"privateclean/internal/telemetry"
)

// Out-of-core loading. ReadWithReport materializes every kept row before the
// relation is built; for sources larger than RAM the same semantics are
// recovered from bounded-memory scans instead:
//
//	scan 1 (kinds)   — infer column kinds exactly as ReadWithReport does,
//	                   holding one row at a time;
//	scan 2 (profile) — with kinds fixed, apply the full row policy
//	                   (arity/syntax/bad_numeric) and accumulate the
//	                   per-attribute domains, numeric ranges, and the load
//	                   Report;
//	scan 3+          — a ChunkIterator re-decodes the kept rows in bounded
//	                   windows for the consumer (privatize, clean, collect).
//
// A Profile plus a ChunkIterator reproduce ReadWithReport exactly: the same
// schema, the same kept rows in the same order, the same Report counters, and
// the same typed errors under the fail policy. The only observable difference
// is sidecar ordering: quarantined rows are written in input order, where the
// in-memory loader groups arity/syntax rows before bad_numeric rows.

// Profile summarizes a CSV source after the kind and domain scans: everything
// a streaming consumer needs before it sees the first row window.
type Profile struct {
	// Columns is the resolved schema in header order.
	Columns []relation.Column
	// Rows is the number of kept data rows (= Report.Rows).
	Rows int
	// Domains maps each discrete column to its sorted distinct values,
	// including relation.Null when the column has empty cells — identical to
	// relation.Domain over the materialized load.
	Domains map[string][]string
	// Deltas maps each numeric column to max-min over its finite cells (0
	// when the column has none), the Proposition 1 sensitivity.
	Deltas map[string]float64
	// Lows maps each numeric column to the minimum over its finite cells (0
	// when the column has none); with Deltas it anchors the released bin
	// layout in the view metadata.
	Lows map[string]float64
	// Report is the row-policy accounting of the profile scan.
	Report *Report
	// DataBytes is the on-disk size of the source, for chunk sizing.
	DataBytes int64
}

// Schema builds the relation schema the profile resolved.
func (p *Profile) Schema() (relation.Schema, error) {
	schema, err := relation.NewSchema(p.Columns...)
	if err != nil {
		return relation.Schema{}, faults.Wrap(faults.ErrBadInput, fmt.Errorf("csvio: %w", err))
	}
	return schema, nil
}

// source is one sequential pass over a CSV file: BOM stripped, header read
// and validated with the same typed errors as ReadWithReport.
type source struct {
	f      *os.File
	cr     *csv.Reader
	header []string
	// physical is the 1-based physical row number of the last record read
	// (the header is row 1).
	physical int
}

func openSource(path string) (*source, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, faults.Wrap(faults.ErrBadInput, fmt.Errorf("csvio: %w", err))
	}
	br := bufio.NewReader(f)
	if head, err := br.Peek(3); err == nil && bytes.Equal(head, []byte{0xEF, 0xBB, 0xBF}) {
		br.Discard(3) // UTF-8 BOM
	}
	cr := csv.NewReader(br)
	cr.TrimLeadingSpace = true
	cr.FieldsPerRecord = -1 // arity enforced by the caller, under the row policy
	cr.ReuseRecord = true

	header, err := cr.Read()
	if err == io.EOF {
		f.Close()
		return nil, faults.Errorf(faults.ErrBadInput, "csvio: missing header row")
	}
	if err != nil {
		f.Close()
		return nil, faults.Wrap(faults.ErrBadInput, fmt.Errorf("csvio: header: %w", err))
	}
	header = append([]string(nil), header...) // ReuseRecord would clobber it
	seen := make(map[string]bool, len(header))
	for i, name := range header {
		if name == "" {
			f.Close()
			return nil, faults.Errorf(faults.ErrBadInput, "csvio: empty name for header column %d", i+1)
		}
		if seen[name] {
			f.Close()
			return nil, faults.Errorf(faults.ErrBadInput, "csvio: duplicate header column %q", name)
		}
		seen[name] = true
	}
	return &source{f: f, cr: cr, header: header, physical: 1}, nil
}

func (s *source) Close() error { return s.f.Close() }

// rowOutcome classifies one physical data row.
type rowOutcome int

const (
	rowKept rowOutcome = iota
	rowBadSyntax
	rowBadArity
	rowEOF
)

// next reads one data row. For rowKept the returned fields are valid until
// the following next call (ReuseRecord); reason is set for the bad outcomes.
// A stream-level (non row-local) failure is returned as a terminal error with
// ReadWithReport's message.
func (s *source) next() (fields []string, outcome rowOutcome, reason string, err error) {
	rec, err := s.cr.Read()
	if err == io.EOF {
		return nil, rowEOF, "", nil
	}
	s.physical++
	if err != nil {
		var pe *csv.ParseError
		if errors.As(err, &pe) {
			return nil, rowBadSyntax, fmt.Sprintf("csv syntax: %v", pe.Err), nil
		}
		return nil, rowEOF, "", faults.Wrap(faults.ErrBadInput, fmt.Errorf("csvio: row %d: %w", s.physical, err))
	}
	if len(rec) != len(s.header) {
		return rec, rowBadArity, fmt.Sprintf("has %d fields, header has %d", len(rec), len(s.header)), nil
	}
	return rec, rowKept, "", nil
}

// scanKinds is scan 1: infer column kinds over the structurally kept rows,
// holding one row at a time. Under the fail policy a malformed row aborts
// with the same typed error ReadWithReport raises.
func scanKinds(path string, opts Options) ([]relation.Kind, []string, error) {
	src, err := openSource(path)
	if err != nil {
		return nil, nil, err
	}
	defer src.Close()
	tel := opts.Tel
	if tel == nil {
		tel = telemetry.Default()
	}

	header := src.header
	kinds := make([]relation.Kind, len(header))
	forced := make([]bool, len(header))
	numeric := make([]bool, len(header))
	seenVal := make([]bool, len(header))
	for c, name := range header {
		if k, ok := opts.ForceKinds[name]; ok {
			kinds[c] = k
			forced[c] = true
			continue
		}
		numeric[c] = true
	}
	for {
		rec, outcome, reason, err := src.next()
		if err != nil {
			return nil, nil, err
		}
		switch outcome {
		case rowEOF:
			for c := range header {
				if forced[c] {
					continue
				}
				if numeric[c] && seenVal[c] {
					kinds[c] = relation.Numeric
				} else {
					kinds[c] = relation.Discrete
				}
			}
			return kinds, header, nil
		case rowBadSyntax, rowBadArity:
			// Dropped rows contribute no kind evidence. Under the fail
			// policy the load dies here, matching the in-memory loader —
			// including its one malformed-row counter increment.
			if opts.OnRowError == RowErrorFail {
				code := "arity"
				if outcome == rowBadSyntax {
					code = "syntax"
				}
				tel.Metrics.Counter("privateclean_csv_rows_malformed_total",
					"Malformed CSV rows encountered, by reason code and policy.",
					telemetry.L("code", code), telemetry.L("policy", opts.OnRowError.String())).Inc()
				tel.Log.Debug("malformed row", "row", src.physical, "code", code, "policy", opts.OnRowError.String())
				return nil, nil, faults.Errorf(faults.ErrBadInput, "csvio: row %d: %s", src.physical, reason)
			}
		case rowKept:
			for c := range header {
				if forced[c] || !numeric[c] || rec[c] == "" {
					continue
				}
				seenVal[c] = true
				if _, err := strconv.ParseFloat(rec[c], 64); err != nil {
					numeric[c] = false
				}
			}
		}
	}
}

// ProfileFile runs the kind and domain scans over a CSV file. The resulting
// Profile carries the same schema, kept-row count, domains, sensitivities,
// and Report as a materialized ReadFileWithReport under the same Options —
// without ever holding more than one row resident.
func ProfileFile(path string, opts Options) (*Profile, error) {
	if opts.OnRowError == RowErrorQuarantine && opts.Quarantine == nil {
		return nil, faults.Errorf(faults.ErrUsage, "csvio: quarantine policy needs a quarantine writer")
	}
	kinds, header, err := scanKinds(path, opts)
	if err != nil {
		return nil, err
	}
	src, err := openSource(path)
	if err != nil {
		return nil, err
	}
	defer src.Close()

	tel := opts.Tel
	if tel == nil {
		tel = telemetry.Default()
	}
	tel.Redact.Allow(header...)

	rep := &Report{}
	var quarantine *csv.Writer
	if opts.Quarantine != nil {
		quarantine = csv.NewWriter(opts.Quarantine)
	}
	// BadRows keeps ReadWithReport's grouping — arity/syntax rows first, then
	// bad_numeric — by accumulating two capped lists and concatenating.
	var structural, numericBad []RowError
	reject := func(row int, fields []string, code, reason string) error {
		tel.Metrics.Counter("privateclean_csv_rows_malformed_total",
			"Malformed CSV rows encountered, by reason code and policy.",
			telemetry.L("code", code), telemetry.L("policy", opts.OnRowError.String())).Inc()
		tel.Log.Debug("malformed row", "row", row, "code", code, "policy", opts.OnRowError.String())
		switch opts.OnRowError {
		case RowErrorFail:
			return faults.Errorf(faults.ErrBadInput, "csvio: row %d: %s", row, reason)
		case RowErrorSkip:
			rep.Skipped++
		case RowErrorQuarantine:
			rep.Quarantined++
			record := append([]string{strconv.Itoa(row), reason}, fields...)
			if err := quarantine.Write(record); err != nil {
				return faults.Wrap(faults.ErrPartialWrite, fmt.Errorf("csvio: quarantine: %w", err))
			}
		}
		if code == "bad_numeric" {
			if len(numericBad) < maxReportedRows {
				numericBad = append(numericBad, RowError{Row: row, Reason: reason})
			}
		} else if len(structural) < maxReportedRows {
			structural = append(structural, RowError{Row: row, Reason: reason})
		}
		return nil
	}

	domains := make(map[string]map[string]struct{})
	for c, name := range header {
		if kinds[c] == relation.Discrete {
			domains[name] = make(map[string]struct{})
		}
	}
	mins := make([]float64, len(header))
	maxs := make([]float64, len(header))
	seenFinite := make([]bool, len(header))

rowLoop:
	for {
		rec, outcome, reason, err := src.next()
		if err != nil {
			return nil, err
		}
		switch outcome {
		case rowEOF:
			// fallthrough below
		case rowBadSyntax:
			if rerr := reject(src.physical, nil, "syntax", reason); rerr != nil {
				return nil, rerr
			}
			continue
		case rowBadArity:
			if rerr := reject(src.physical, rec, "arity", reason); rerr != nil {
				return nil, rerr
			}
			continue
		case rowKept:
			// Validate numeric cells in header order, so the first offending
			// column is the one ReadWithReport would report.
			vals := make([]float64, 0, 4)
			valCols := make([]int, 0, 4)
			for c, name := range header {
				if kinds[c] != relation.Numeric || rec[c] == "" {
					continue
				}
				v, err := strconv.ParseFloat(rec[c], 64)
				badReason := ""
				switch {
				case err != nil:
					badReason = fmt.Sprintf("column %q: %v", name, err)
				case math.IsInf(v, 0):
					badReason = fmt.Sprintf("column %q: non-finite value %q", name, rec[c])
				default:
					vals = append(vals, v)
					valCols = append(valCols, c)
					continue
				}
				if rerr := reject(src.physical, rec, "bad_numeric", badReason); rerr != nil {
					return nil, rerr
				}
				continue rowLoop
			}
			// Row kept: fold it into domains and ranges.
			for c, name := range header {
				if kinds[c] != relation.Discrete {
					continue
				}
				v := rec[c]
				if v == "" {
					v = relation.Null
				}
				if _, ok := domains[name][v]; !ok {
					// rec's strings share the reader's buffer (ReuseRecord);
					// clone the ones that outlive this row.
					domains[name][string(append([]byte(nil), v...))] = struct{}{}
				}
			}
			for i, v := range vals {
				c := valCols[i]
				if math.IsNaN(v) {
					continue
				}
				if !seenFinite[c] {
					mins[c], maxs[c], seenFinite[c] = v, v, true
					continue
				}
				if v < mins[c] {
					mins[c] = v
				}
				if v > maxs[c] {
					maxs[c] = v
				}
			}
			rep.Rows++
			continue
		}
		break
	}

	if quarantine != nil {
		quarantine.Flush()
		if err := quarantine.Error(); err != nil {
			return nil, faults.Wrap(faults.ErrPartialWrite, fmt.Errorf("csvio: quarantine: %w", err))
		}
	}
	rep.BadRows = append(structural, numericBad...)
	if len(rep.BadRows) > maxReportedRows {
		rep.BadRows = rep.BadRows[:maxReportedRows]
	}

	prof := &Profile{
		Columns: make([]relation.Column, len(header)),
		Rows:    rep.Rows,
		Domains: make(map[string][]string),
		Deltas:  make(map[string]float64),
		Lows:    make(map[string]float64),
		Report:  rep,
	}
	for c, name := range header {
		prof.Columns[c] = relation.Column{Name: name, Kind: kinds[c]}
		switch kinds[c] {
		case relation.Discrete:
			dom := make([]string, 0, len(domains[name]))
			for v := range domains[name] {
				dom = append(dom, v)
			}
			sort.Strings(dom)
			prof.Domains[name] = dom
		case relation.Numeric:
			if seenFinite[c] {
				prof.Deltas[name] = maxs[c] - mins[c]
				prof.Lows[name] = mins[c]
			} else {
				prof.Deltas[name] = 0
				prof.Lows[name] = 0
			}
		}
	}
	if info, err := os.Stat(path); err == nil {
		prof.DataBytes = info.Size()
	}

	tel.Metrics.Counter("privateclean_csv_rows_total", "Rows kept from CSV loads.").Add(float64(rep.Rows))
	tel.Metrics.Histogram("privateclean_csv_rows_per_load", "Kept rows per CSV load.",
		telemetry.RowBuckets).Observe(float64(rep.Rows))
	if !rep.Clean() {
		tel.Log.Warn("lossy CSV load", "rows", rep.Rows, "skipped", rep.Skipped,
			"quarantined", rep.Quarantined, "policy", opts.OnRowError.String())
	}
	return prof, nil
}

// ChunkIterator streams the kept rows of a profiled CSV source as bounded
// relation windows (relation.Iterator). Window k holds kept rows
// [k*window, (k+1)*window) in input order with ReadWithReport's cell
// conventions, so the concatenation of all windows equals the materialized
// load. Rows the profile scan rejected are skipped silently — they were
// already counted (or, under the fail policy, already fatal).
type ChunkIterator struct {
	src    *source
	schema relation.Schema
	kinds  []relation.Kind
	window int
	done   bool
}

// NewChunkIterator opens a streaming pass over path using the schema prof
// resolved, yielding windows of at most window rows (relation.DefaultWindow
// if <= 0).
func NewChunkIterator(path string, prof *Profile, window int) (*ChunkIterator, error) {
	schema, err := prof.Schema()
	if err != nil {
		return nil, err
	}
	if window <= 0 {
		window = relation.DefaultWindow
	}
	src, err := openSource(path)
	if err != nil {
		return nil, err
	}
	kinds := make([]relation.Kind, len(prof.Columns))
	for c, col := range prof.Columns {
		if col.Name != src.header[c] {
			src.Close()
			return nil, faults.Errorf(faults.ErrBadInput,
				"csvio: source column %d is %q, profile has %q (file changed since profiling?)", c+1, src.header[c], col.Name)
		}
		kinds[c] = col.Kind
	}
	return &ChunkIterator{src: src, schema: schema, kinds: kinds, window: window}, nil
}

// Schema returns the schema every window carries.
func (it *ChunkIterator) Schema() relation.Schema { return it.schema }

// Close releases the underlying file. Next returns io.EOF afterwards.
func (it *ChunkIterator) Close() error {
	it.done = true
	return it.src.Close()
}

// Next decodes the next window of kept rows, or returns io.EOF after the
// last one.
func (it *ChunkIterator) Next() (*relation.Relation, error) {
	if it.done {
		return nil, io.EOF
	}
	header := it.src.header
	numeric := make(map[string][]float64)
	discrete := make(map[string][]string)
	for c, name := range header {
		switch it.kinds[c] {
		case relation.Numeric:
			numeric[name] = make([]float64, 0, it.window)
		case relation.Discrete:
			discrete[name] = make([]string, 0, it.window)
		}
	}
	kept := 0
	vals := make([]float64, len(header))
rowLoop:
	for kept < it.window {
		rec, outcome, _, err := it.src.next()
		if err != nil {
			return nil, err
		}
		switch outcome {
		case rowEOF:
			it.done = true
			break rowLoop
		case rowBadSyntax, rowBadArity:
			continue
		}
		// Re-validate numeric cells with the profiled kinds so the iterator
		// drops exactly the rows the profile scan rejected.
		for c := range header {
			if it.kinds[c] != relation.Numeric {
				continue
			}
			if rec[c] == "" {
				vals[c] = math.NaN()
				continue
			}
			v, err := strconv.ParseFloat(rec[c], 64)
			if err != nil || math.IsInf(v, 0) {
				continue rowLoop
			}
			vals[c] = v
		}
		for c, name := range header {
			switch it.kinds[c] {
			case relation.Numeric:
				numeric[name] = append(numeric[name], vals[c])
			case relation.Discrete:
				v := rec[c]
				if v == "" {
					v = relation.Null
				} else {
					v = string(append([]byte(nil), v...)) // outlives ReuseRecord
				}
				discrete[name] = append(discrete[name], v)
			}
		}
		kept++
	}
	if kept == 0 {
		return nil, io.EOF
	}
	rel, err := relation.FromColumns(it.schema, numeric, discrete)
	if err != nil {
		return nil, faults.Wrap(faults.ErrInternal, fmt.Errorf("csvio: %w", err))
	}
	return rel, nil
}
