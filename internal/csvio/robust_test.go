package csvio

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"privateclean/internal/faults"
	"privateclean/internal/relation"
)

// TestReadMalformedInputs is the table of corrupted/truncated inputs the
// loader must reject (under the default fail policy) with typed errors.
func TestReadMalformedInputs(t *testing.T) {
	cases := []struct {
		name string
		src  string
		opts Options
	}{
		{"empty file", "", Options{}},
		{"ragged short row", "a,b\n1,2\n3\n", Options{}},
		{"ragged long row", "a,b\n1,2\n3,4,5\n", Options{}},
		{"duplicate header", "a,a\n1,2\n", Options{}},
		{"empty header name", "a,,c\n1,2,3\n", Options{}},
		{"bare quote", "a,b\n\"x,y\nz,w\n", Options{}},
		{"forced numeric garbage", "a\nxyz\n",
			Options{ForceKinds: map[string]relation.Kind{"a": relation.Numeric}}},
		{"explicit Inf", "a\n1\n+Inf\n", Options{}},
		{"explicit negative Inf", "a\n-Inf\n2\n", Options{}},
		{"overflowing float", "a\n1e309\n",
			Options{ForceKinds: map[string]relation.Kind{"a": relation.Numeric}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(c.src), c.opts)
			if err == nil {
				t.Fatalf("Read(%q) should fail", c.src)
			}
			if !errors.Is(err, faults.ErrBadInput) {
				t.Fatalf("Read(%q) error not typed ErrBadInput: %v", c.src, err)
			}
		})
	}
}

// TestReadAcceptedOddities is the table of inputs that look suspicious but
// must load: BOM, NaN sentinel, blank lines, quoted commas.
func TestReadAcceptedOddities(t *testing.T) {
	cases := []struct {
		name string
		src  string
		rows int
	}{
		{"utf8 bom", "\xEF\xBB\xBFa,b\n1,x\n", 1},
		{"bom only header", "\xEF\xBB\xBFa\n", 0},
		{"nan sentinel", "a\n1\nNaN\n", 2},
		{"blank lines skipped", "a,b\n1,x\n\n2,y\n", 2},
		{"quoted comma", "a,b\n\"x,y\",1\n", 1},
		{"crlf", "a,b\r\n1,x\r\n", 1},
		{"header only", "a,b\n", 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r, err := Read(strings.NewReader(c.src), Options{})
			if err != nil {
				t.Fatalf("Read(%q): %v", c.src, err)
			}
			if r.NumRows() != c.rows {
				t.Fatalf("Read(%q) rows = %d, want %d", c.src, r.NumRows(), c.rows)
			}
		})
	}
}

func TestBOMDoesNotPolluteHeaderName(t *testing.T) {
	r, err := Read(strings.NewReader("\xEF\xBB\xBFmajor\nME\n"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Schema().Lookup("major"); !ok {
		t.Fatalf("BOM leaked into header: columns = %v", r.Schema().Columns())
	}
}

func TestSkipPolicyCountsAndKeeps(t *testing.T) {
	src := "a,b\n1,x\nbad\n2,y\n3,z,EXTRA\n4,w\n"
	rel, rep, err := ReadWithReport(strings.NewReader(src), Options{OnRowError: RowErrorSkip})
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 3 || rep.Rows != 3 {
		t.Fatalf("kept %d rows, want 3 (report %+v)", rel.NumRows(), rep)
	}
	if rep.Skipped != 2 || rep.Quarantined != 0 {
		t.Fatalf("report = %+v, want 2 skipped", rep)
	}
	if len(rep.BadRows) != 2 || rep.BadRows[0].Row != 3 || rep.BadRows[1].Row != 5 {
		t.Fatalf("bad rows = %+v", rep.BadRows)
	}
	if rep.Clean() {
		t.Fatal("report with skips must not be Clean")
	}
}

func TestSkipPolicyKeepsInferenceStable(t *testing.T) {
	// The malformed row's "xyz" must not flip column b to discrete once the
	// row is skipped.
	src := "a,b\n1,2\nbad-row-only-one-field\n3,4\n"
	rel, rep, err := ReadWithReport(strings.NewReader(src), Options{OnRowError: RowErrorSkip})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if c, _ := rel.Schema().Lookup("b"); c.Kind != relation.Numeric {
		t.Fatal("skipped row affected kind inference")
	}
}

func TestQuarantinePolicyWritesSidecar(t *testing.T) {
	src := "a,b\n1,x\nonly-one\n2,y\n"
	var sidecar bytes.Buffer
	rel, rep, err := ReadWithReport(strings.NewReader(src), Options{
		OnRowError: RowErrorQuarantine,
		Quarantine: &sidecar,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 2 || rep.Quarantined != 1 || rep.Skipped != 0 {
		t.Fatalf("rows=%d report=%+v", rel.NumRows(), rep)
	}
	line := sidecar.String()
	if !strings.HasPrefix(line, "3,") || !strings.Contains(line, "only-one") {
		t.Fatalf("sidecar = %q, want row number 3 and original fields", line)
	}
}

func TestQuarantinePolicyNeedsWriter(t *testing.T) {
	_, _, err := ReadWithReport(strings.NewReader("a\n1\n"), Options{OnRowError: RowErrorQuarantine})
	if !errors.Is(err, faults.ErrUsage) {
		t.Fatalf("want ErrUsage for missing quarantine writer, got %v", err)
	}
}

func TestStreamFailureNotSkippable(t *testing.T) {
	// An I/O error mid-stream is not a row error: even the skip policy must
	// abort, otherwise a truncated transfer silently halves the dataset.
	src := "a,b\n" + strings.Repeat("1,x\n", 100)
	fr := &faults.FailingReader{R: strings.NewReader(src), FailAt: 50}
	_, _, err := ReadWithReport(fr, Options{OnRowError: RowErrorSkip})
	if err == nil {
		t.Fatal("mid-stream failure should abort the load")
	}
	if !errors.Is(err, faults.ErrBadInput) || !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("want typed ErrBadInput carrying the injected cause, got %v", err)
	}
}

func TestCleanTruncationDropsLastRow(t *testing.T) {
	// A clean EOF mid-row makes the final row ragged; the fail policy turns
	// that into a typed error instead of a silently shorter relation.
	src := "a,b\n1,x\n2,y\n3,z\n"
	tr := &faults.TruncatingReader{R: strings.NewReader(src), Limit: int64(len(src) - 3)}
	_, err := Read(tr, Options{})
	if !errors.Is(err, faults.ErrBadInput) {
		t.Fatalf("want ErrBadInput for truncated input, got %v", err)
	}
}

func TestParseRowErrorPolicy(t *testing.T) {
	for s, want := range map[string]RowErrorPolicy{
		"":           RowErrorFail,
		"fail":       RowErrorFail,
		"skip":       RowErrorSkip,
		"quarantine": RowErrorQuarantine,
	} {
		got, err := ParseRowErrorPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseRowErrorPolicy(%q) = %v, %v", s, got, err)
		}
		if s != "" && got.String() != s {
			t.Fatalf("String() = %q, want %q", got.String(), s)
		}
	}
	if _, err := ParseRowErrorPolicy("explode"); !errors.Is(err, faults.ErrUsage) {
		t.Fatalf("want ErrUsage, got %v", err)
	}
}

func TestReportCapsBadRowDetail(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("a,b\n")
	for i := 0; i < maxReportedRows+50; i++ {
		sb.WriteString("ragged\n")
	}
	_, rep, err := ReadWithReport(strings.NewReader(sb.String()), Options{OnRowError: RowErrorSkip})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != maxReportedRows+50 {
		t.Fatalf("skipped = %d", rep.Skipped)
	}
	if len(rep.BadRows) != maxReportedRows {
		t.Fatalf("detail not capped: %d entries", len(rep.BadRows))
	}
}
