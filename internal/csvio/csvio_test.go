package csvio

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"privateclean/internal/relation"
)

func TestReadInference(t *testing.T) {
	csv := "major,score,section\nME,4.5,1\nEE,3,2\nCS,,3\n"
	r, err := Read(strings.NewReader(csv), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc := r.Schema()
	if c, _ := sc.Lookup("major"); c.Kind != relation.Discrete {
		t.Fatal("major should be discrete")
	}
	if c, _ := sc.Lookup("score"); c.Kind != relation.Numeric {
		t.Fatal("score should be numeric")
	}
	if c, _ := sc.Lookup("section"); c.Kind != relation.Numeric {
		t.Fatal("section should infer numeric")
	}
	scores := r.MustNumeric("score")
	if scores[0] != 4.5 || !math.IsNaN(scores[2]) {
		t.Fatalf("scores = %v", scores)
	}
}

func TestReadForceKinds(t *testing.T) {
	csv := "id,score\n1,4\n2,3\n"
	r, err := Read(strings.NewReader(csv), Options{ForceKinds: map[string]relation.Kind{"id": relation.Discrete}})
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := r.Schema().Lookup("id"); c.Kind != relation.Discrete {
		t.Fatal("forced kind ignored")
	}
	if r.MustDiscrete("id")[1] != "2" {
		t.Fatalf("id column = %v", r.MustDiscrete("id"))
	}
}

func TestReadEmptyCellsBecomeNull(t *testing.T) {
	// (A fully blank line would be skipped by encoding/csv, so the empty
	// cell sits next to a populated one.)
	csv := "major,idx\nME,1\n,2\nEE,3\n"
	r, err := Read(strings.NewReader(csv), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.MustDiscrete("major")[1] != relation.Null {
		t.Fatalf("empty cell = %q", r.MustDiscrete("major")[1])
	}
}

func TestReadAllEmptyColumnIsDiscrete(t *testing.T) {
	csv := "a,b\n1,\n2,\n"
	r, err := Read(strings.NewReader(csv), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := r.Schema().Lookup("b"); c.Kind != relation.Discrete {
		t.Fatal("all-empty column should default to discrete")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader(""), Options{}); err == nil {
		t.Fatal("want error for missing header")
	}
	if _, err := Read(strings.NewReader("a,b\n1\n"), Options{}); err == nil {
		t.Fatal("want error for ragged rows (encoding/csv)")
	}
	// Forced numeric with a non-numeric cell.
	_, err := Read(strings.NewReader("a\nxyz\n"), Options{ForceKinds: map[string]relation.Kind{"a": relation.Numeric}})
	if err == nil {
		t.Fatal("want parse error for forced numeric")
	}
	// Duplicate header.
	if _, err := Read(strings.NewReader("a,a\n1,2\n"), Options{}); err == nil {
		t.Fatal("want duplicate-column error")
	}
}

func TestWriteRoundTrip(t *testing.T) {
	schema := relation.MustSchema(
		relation.Column{Name: "major", Kind: relation.Discrete},
		relation.Column{Name: "score", Kind: relation.Numeric},
	)
	orig, err := relation.FromColumns(schema,
		map[string][]float64{"score": {4.25, math.NaN(), 3}},
		map[string][]string{"major": {"ME", relation.Null, "a,b \"quoted\""}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf, Options{ForceKinds: map[string]relation.Kind{"major": relation.Discrete}})
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Equal(back) {
		t.Fatalf("round trip mismatch:\norig %v\nback %v", orig, back)
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rel.csv")
	schema := relation.MustSchema(relation.Column{Name: "d", Kind: relation.Discrete})
	orig, _ := relation.FromColumns(schema, nil, map[string][]string{"d": {"x", "y"}})
	if err := WriteFile(path, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Equal(back) {
		t.Fatal("file round trip mismatch")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.csv"), Options{}); err == nil {
		t.Fatal("want error for missing file")
	}
	if err := WriteFile(filepath.Join(dir, "no", "such", "dir.csv"), orig); err == nil {
		t.Fatal("want error for unwritable path")
	}
	_ = os.Remove(path)
}

func TestZeroRowRelation(t *testing.T) {
	csv := "a,b\n"
	r, err := Read(strings.NewReader(csv), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != 0 {
		t.Fatalf("rows = %d", r.NumRows())
	}
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "a,b") {
		t.Fatalf("header = %q", buf.String())
	}
}
