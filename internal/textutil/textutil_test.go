package textutil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLevenshteinTable(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
		{"Canada", "Canadax", 1},
		{"café", "cafe", 1}, // unicode-aware
		{"ab", "ba", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSimilar(t *testing.T) {
	if !Similar("Canada", "Canadax", 1) {
		t.Fatal("one-char append should be similar at d=1")
	}
	if Similar("Canada", "Mexico", 1) {
		t.Fatal("Canada/Mexico not similar at d=1")
	}
	// Length-difference short circuit.
	if Similar("ab", "abcdef", 2) {
		t.Fatal("length gap 4 > 2 must be dissimilar")
	}
}

func TestNormalize(t *testing.T) {
	if Normalize("  Hello World ") != "hello world" {
		t.Fatalf("Normalize = %q", Normalize("  Hello World "))
	}
}

// Metric axioms: identity, symmetry, triangle inequality.
func TestLevenshteinMetricAxioms(t *testing.T) {
	clamp := func(s string) string {
		if len(s) > 12 {
			return s[:12]
		}
		return s
	}
	identity := func(a string) bool {
		a = clamp(a)
		return Levenshtein(a, a) == 0
	}
	symmetry := func(a, b string) bool {
		a, b = clamp(a), clamp(b)
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	triangle := func(a, b, c string) bool {
		a, b, c = clamp(a), clamp(b), clamp(c)
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	for name, f := range map[string]any{"identity": identity, "symmetry": symmetry, "triangle": triangle} {
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Distance is bounded below by the rune-length difference and above by the
// longer length.
func TestLevenshteinBounds(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 12 {
			a = a[:12]
		}
		if len(b) > 12 {
			b = b[:12]
		}
		la, lb := len([]rune(a)), len([]rune(b))
		d := Levenshtein(a, b)
		diff := la - lb
		if diff < 0 {
			diff = -diff
		}
		maxLen := la
		if lb > maxLen {
			maxLen = lb
		}
		return d >= diff && d <= maxLen
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestLevenshteinBoundedAgreesWithFull cross-checks the banded DP against
// the full computation over random rune strings at every useful bound.
func TestLevenshteinBoundedAgreesWithFull(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabet := []rune("abcdeé日本")
	randStr := func() string {
		n := rng.Intn(12)
		rs := make([]rune, n)
		for i := range rs {
			rs[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(rs)
	}
	for trial := 0; trial < 2000; trial++ {
		a, b := randStr(), randStr()
		full := Levenshtein(a, b)
		for max := 0; max <= 12; max++ {
			got := LevenshteinBounded(a, b, max)
			if full <= max {
				if got != full {
					t.Fatalf("LevenshteinBounded(%q, %q, %d) = %d, full distance %d", a, b, max, got, full)
				}
			} else if got <= max {
				t.Fatalf("LevenshteinBounded(%q, %q, %d) = %d, but full distance %d exceeds the bound", a, b, max, got, full)
			}
		}
	}
}

func TestLevenshteinBoundedEdges(t *testing.T) {
	if got := LevenshteinBounded("", "abc", 3); got != 3 {
		t.Errorf("empty vs abc, max 3: %d", got)
	}
	if got := LevenshteinBounded("", "abc", 2); got <= 2 {
		t.Errorf("empty vs abc, max 2 should exceed the bound: %d", got)
	}
	if got := LevenshteinBounded("same", "same", 0); got != 0 {
		t.Errorf("identical strings, max 0: %d", got)
	}
	if got := LevenshteinBounded("a", "b", -1); got <= 0 {
		t.Errorf("negative max should behave as 0: %d", got)
	}
	if Similar("a", "b", -1) {
		t.Error("Similar with negative distance must be false")
	}
}
