// Package textutil provides string-similarity utilities used by the
// matching-dependency repair cleaner (Section 8.3.4 of the paper resolves a
// matching dependency on ca_country with an edit-distance similarity metric).
package textutil

import "strings"

// Levenshtein returns the edit distance between a and b: the minimum number
// of single-rune insertions, deletions, and substitutions required to turn a
// into b.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// LevenshteinBounded returns the edit distance between a and b when it is at
// most max, and any value greater than max otherwise (callers must compare
// with <= max, not ==). It evaluates only the diagonal band of the DP matrix
// that can hold values <= max — width 2*max+1 — and exits as soon as a whole
// row exceeds the bound, so the cost is O(max * min(len a, len b)) instead
// of O(len a * len b). max < 0 is treated as 0.
func LevenshteinBounded(a, b string, max int) int {
	if max < 0 {
		max = 0
	}
	ra, rb := []rune(a), []rune(b)
	// Cells outside the band would need more than max insertions/deletions;
	// the length difference alone already decides those cases.
	diff := len(ra) - len(rb)
	if diff < 0 {
		diff = -diff
	}
	if diff > max {
		return max + 1
	}
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	const inf = int(^uint(0) >> 1)
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		if j <= max {
			prev[j] = j
		} else {
			prev[j] = inf
		}
	}
	for i := 1; i <= len(ra); i++ {
		lo := i - max
		if lo < 1 {
			lo = 1
		}
		hi := i + max
		if hi > len(rb) {
			hi = len(rb)
		}
		if lo > 1 {
			cur[lo-1] = inf
		} else {
			cur[0] = i
		}
		best := inf
		for j := lo; j <= hi; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			up, left, diag := prev[j], cur[j-1], prev[j-1]
			v := diag + cost
			if up != inf && up+1 < v {
				v = up + 1
			}
			if left != inf && left+1 < v {
				v = left + 1
			}
			cur[j] = v
			if v < best {
				best = v
			}
		}
		if hi < len(rb) {
			cur[hi+1] = inf
		}
		if best > max {
			return max + 1
		}
		prev, cur = cur, prev
	}
	if prev[len(rb)] > max {
		return max + 1
	}
	return prev[len(rb)]
}

// Similar reports whether the edit distance between a and b is at most d.
// It short-circuits on the length difference (which lower-bounds the
// distance) and otherwise runs the banded DP, so a negative answer costs
// O(d * min(len a, len b)) rather than a full distance computation.
func Similar(a, b string, d int) bool {
	if d < 0 {
		return false
	}
	return LevenshteinBounded(a, b, d) <= d
}

// Normalize lowercases and trims a string; a cheap canonicalization step
// applied before similarity comparison so that case/whitespace variants of
// the same logical value cluster together.
func Normalize(s string) string {
	return strings.ToLower(strings.TrimSpace(s))
}
