// Package textutil provides string-similarity utilities used by the
// matching-dependency repair cleaner (Section 8.3.4 of the paper resolves a
// matching dependency on ca_country with an edit-distance similarity metric).
package textutil

import "strings"

// Levenshtein returns the edit distance between a and b: the minimum number
// of single-rune insertions, deletions, and substitutions required to turn a
// into b.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Similar reports whether the edit distance between a and b is at most d.
// It short-circuits on the length difference, which already lower-bounds the
// distance.
func Similar(a, b string, d int) bool {
	la, lb := len([]rune(a)), len([]rune(b))
	diff := la - lb
	if diff < 0 {
		diff = -diff
	}
	if diff > d {
		return false
	}
	return Levenshtein(a, b) <= d
}

// Normalize lowercases and trims a string; a cheap canonicalization step
// applied before similarity comparison so that case/whitespace variants of
// the same logical value cluster together.
func Normalize(s string) string {
	return strings.ToLower(strings.TrimSpace(s))
}
