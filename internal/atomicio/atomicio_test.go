package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"privateclean/internal/faults"
)

func listDir(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name()
	}
	return names
}

func TestWriteFileBytes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFileBytes(path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if names := listDir(t, dir); len(names) != 1 {
		t.Fatalf("temp file left behind: %v", names)
	}
}

func TestWriteFileOverwrites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFileBytes(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileBytes(path, []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new" {
		t.Fatalf("got %q", got)
	}
}

func TestWriteFailureLeavesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFileBytes(path, []byte("precious")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("mid-write crash")
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "half of the new cont")
		return boom
	})
	if !errors.Is(err, boom) || !errors.Is(err, faults.ErrPartialWrite) {
		t.Fatalf("want wrapped ErrPartialWrite carrying cause, got %v", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "precious" {
		t.Fatalf("old content destroyed: %q", got)
	}
	if names := listDir(t, dir); len(names) != 1 {
		t.Fatalf("temp file left behind after failure: %v", names)
	}
}

func TestWriteFailureLeavesNoNewFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fresh.txt")
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "partial")
		return errors.New("crash")
	})
	if err == nil {
		t.Fatal("want error")
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Fatal("failed write must not create the destination")
	}
	if names := listDir(t, dir); len(names) != 0 {
		t.Fatalf("debris after failed write: %v", names)
	}
}

func TestShortWriterFailure(t *testing.T) {
	// A writer-level short write (e.g. ENOSPC) classifies as partial write.
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	err := WriteFile(path, func(w io.Writer) error {
		fw := &faults.FailingWriter{W: w, FailAt: 3, Short: true}
		_, err := fw.Write([]byte(strings.Repeat("x", 100)))
		return err
	})
	if !errors.Is(err, faults.ErrPartialWrite) || !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("want ErrPartialWrite + injected cause, got %v", err)
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Fatal("short write must not surface a destination file")
	}
}

func TestWriteJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.json")
	if err := WriteJSON(path, map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if !strings.HasSuffix(string(got), "\n") || !strings.Contains(string(got), `"a": 1`) {
		t.Fatalf("json form wrong: %q", got)
	}
}

func TestWriteJSONUnmarshalable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.json")
	if err := WriteJSON(path, func() {}); err == nil {
		t.Fatal("want marshal error")
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Fatal("marshal failure must not create the file")
	}
}

func TestMissingDirectory(t *testing.T) {
	err := WriteFileBytes(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"))
	if err == nil {
		t.Fatal("want error for missing directory")
	}
}
