// Package atomicio writes files atomically: content goes to a temporary
// file in the destination's directory, is flushed and fsynced, and is then
// renamed over the destination. A crash at any point leaves either the old
// file or the new file — never a half-written artifact.
//
// That guarantee is load-bearing for PrivateClean: a truncated private view
// or metadata file silently changes the effective epsilon of a release, and
// a re-run from scratch double-spends the privacy budget. Every artifact the
// CLI and the core pipeline emit (CSV views, meta.json, provenance JSON,
// checkpoints) goes through this package.
package atomicio

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"privateclean/internal/faults"
)

// WriteFile writes the destination atomically with the content produced by
// write. The temp file lives in path's directory so the final rename cannot
// cross filesystems. On any failure the temp file is removed and the
// destination is untouched; write-side failures are classified as
// faults.ErrPartialWrite.
func WriteFile(path string, write func(io.Writer) error) error {
	return writeFile(path, write, true)
}

// WriteFileKeep is WriteFile except that an error returned by the write
// callback is propagated unmodified instead of being classified as
// faults.ErrPartialWrite. Use it when the callback runs a larger pipeline
// (e.g. a CSV load emitting a quarantine sidecar) whose failures carry their
// own taxonomy kinds that callers branch on; the atomicity guarantee — old
// file or new file, never a torn one — is identical.
func WriteFileKeep(path string, write func(io.Writer) error) error {
	return writeFile(path, write, false)
}

func writeFile(path string, write func(io.Writer) error, classify bool) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := write(tmp); err != nil {
		if !classify {
			return err
		}
		return faults.Wrap(faults.ErrPartialWrite, fmt.Errorf("atomicio: writing %s: %w", path, err))
	}
	if err := tmp.Sync(); err != nil {
		return faults.Wrap(faults.ErrPartialWrite, fmt.Errorf("atomicio: sync %s: %w", path, err))
	}
	if err := tmp.Close(); err != nil {
		return faults.Wrap(faults.ErrPartialWrite, fmt.Errorf("atomicio: close %s: %w", path, err))
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	// fsync the directory so the rename itself is durable: without it a
	// power loss can forget the new directory entry even though the file's
	// contents were synced.
	if err := syncDir(dir); err != nil {
		return faults.Wrap(faults.ErrPartialWrite, fmt.Errorf("atomicio: dir sync %s: %w", path, err))
	}
	return nil
}

// syncDir fsyncs a directory, making renames and file creations in it
// durable against power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// WriteFileBytes atomically writes a byte slice.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		n, err := w.Write(data)
		if err != nil {
			return err
		}
		if n != len(data) {
			return fmt.Errorf("short write: %d of %d bytes", n, len(data))
		}
		return nil
	})
}

// OpenAppend opens path for appending (creating it if needed) and fsyncs
// the parent directory so the new directory entry survives power loss. It is
// the door into the one non-atomic write shape this package sanctions:
// append-only sinks (WAL-style logs, JSONL exporters) where each record is
// written in a single Write call and a torn tail is detectable by the
// reader.
func OpenAppend(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("atomicio: open append %s: %w", path, err)
	}
	dir := filepath.Dir(path)
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, faults.Wrap(faults.ErrPartialWrite, fmt.Errorf("atomicio: dir sync %s: %w", path, err))
	}
	return f, nil
}

// WriteJSON atomically writes v as indented JSON with a trailing newline —
// the sidecar format shared by meta.json, provenance, and checkpoints.
func WriteJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("atomicio: marshal %s: %w", path, err)
	}
	return WriteFileBytes(path, append(data, '\n'))
}
