package query_test

import (
	"fmt"
	"log"

	"privateclean/internal/query"
)

// ExampleParse shows the supported dialect: the paper's query class plus
// the Section 10 extensions.
func ExampleParse() {
	for _, sql := range []string{
		"SELECT count(1) FROM R WHERE major = 'Mech. Eng.'",
		"select AVG(score) from R where isEurope(country)",
		"SELECT median(temp) FROM log WHERE sensor_id != NULL",
		"SELECT count(1) FROM R WHERE major = 'ME' AND section IN ('1', '2')",
		"SELECT count(1) FROM addresses GROUP BY ca_state",
	} {
		q, err := query.Parse(sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(q)
	}
	// Output:
	// SELECT count(1) FROM R WHERE major = 'Mech. Eng.'
	// SELECT avg(score) FROM R WHERE isEurope(country)
	// SELECT median(temp) FROM log WHERE sensor_id != 'NULL'
	// SELECT count(1) FROM R WHERE major = 'ME' AND section IN ('1', '2')
	// SELECT count(1) FROM addresses GROUP BY ca_state
	//
}
