package query

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"privateclean/internal/estimator"
	"privateclean/internal/relation"
)

// UDFs is a registry of user-defined predicate functions usable in WHERE
// clauses, keyed by lower-case name.
type UDFs map[string]func(string) bool

// Result is the outcome of exactly executing a query against a relation.
type Result struct {
	// Scalar holds the aggregate for a non-GROUP BY query.
	Scalar float64
	// Groups holds per-group aggregates for a GROUP BY query.
	Groups map[string]float64
	// IsGroupBy distinguishes the two shapes.
	IsGroupBy bool
}

// GroupKeys returns the sorted group keys of a GROUP BY result.
func (r Result) GroupKeys() []string {
	keys := make([]string, 0, len(r.Groups))
	for k := range r.Groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CompilePredicate turns a parsed condition into an estimator.Predicate,
// resolving UDF names against the registry.
func CompilePredicate(c *Cond, udfs UDFs) (estimator.Predicate, error) {
	var pred estimator.Predicate
	switch c.Kind {
	case CondEq:
		pred = estimator.Eq(c.Attr, c.Values[0])
	case CondIn:
		pred = estimator.In(c.Attr, c.Values...)
	case CondUDF:
		// UDF names are case-insensitive: the registry is keyed lower-case.
		f, ok := udfs[strings.ToLower(c.UDF)]
		if !ok {
			return estimator.Predicate{}, fmt.Errorf("query: unknown UDF %q", c.UDF)
		}
		pred = estimator.Fn(c.Attr, c.UDF, f)
	default:
		return estimator.Predicate{}, fmt.Errorf("query: invalid condition kind %d", c.Kind)
	}
	if c.Negate {
		pred = estimator.Not(pred)
	}
	return pred, nil
}

// CompileConjunction compiles a WHERE conjunction into one predicate per
// distinct attribute: conjuncts over the same attribute are merged with a
// logical AND of their match functions (they reduce to one value subset),
// so the result is directly usable with the estimator's conjunction
// methods, which require distinct attributes.
func CompileConjunction(conds []*Cond, udfs UDFs) ([]estimator.Predicate, error) {
	byAttr := make(map[string]estimator.Predicate)
	var order []string
	for _, c := range conds {
		pred, err := CompilePredicate(c, udfs)
		if err != nil {
			return nil, err
		}
		if prev, ok := byAttr[c.Attr]; ok {
			// estimator.And keeps the merged predicate's description
			// canonical, so a server-side channel cache never conflates two
			// different conjunctions over the same attribute.
			byAttr[c.Attr] = estimator.And(prev, pred)
			continue
		}
		byAttr[c.Attr] = pred
		order = append(order, c.Attr)
	}
	out := make([]estimator.Predicate, 0, len(order))
	for _, attr := range order {
		out = append(out, byAttr[attr])
	}
	return out, nil
}

// Exec evaluates a query exactly against a relation. This is the
// ground-truth oracle: running Exec on the hypothetically cleaned
// non-private relation R_clean yields the value the estimators are judged
// against.
func Exec(rel *relation.Relation, q *Query, udfs UDFs) (Result, error) {
	if q.GroupBy != "" {
		return execGroupBy(rel, q)
	}
	if len(q.AndWhere) > 0 {
		return execConjunction(rel, q, udfs)
	}
	var pred estimator.Predicate
	havePred := q.Where != nil
	if havePred {
		var err error
		pred, err = CompilePredicate(q.Where, udfs)
		if err != nil {
			return Result{}, err
		}
	} else {
		// Trivially true predicate on any discrete attribute; COUNT and SUM
		// without predicates reduce to whole-column aggregates below.
		pred = estimator.Predicate{}
	}

	switch q.Agg {
	case AggCount:
		if !havePred {
			return Result{Scalar: float64(rel.NumRows())}, nil
		}
		v, err := estimator.DirectCount(rel, pred)
		if err != nil {
			return Result{}, err
		}
		return Result{Scalar: v}, nil
	case AggSum:
		if !havePred {
			col, err := rel.Numeric(q.AggAttr)
			if err != nil {
				return Result{}, err
			}
			s := 0.0
			for _, x := range col {
				if x == x { // skip NaN
					s += x
				}
			}
			return Result{Scalar: s}, nil
		}
		v, err := estimator.DirectSum(rel, q.AggAttr, pred)
		if err != nil {
			return Result{}, err
		}
		return Result{Scalar: v}, nil
	case AggAvg:
		if !havePred {
			col, err := rel.Numeric(q.AggAttr)
			if err != nil {
				return Result{}, err
			}
			s, n := 0.0, 0
			for _, x := range col {
				if x == x {
					s += x
					n++
				}
			}
			if n == 0 {
				return Result{}, fmt.Errorf("query: avg over empty column %q", q.AggAttr)
			}
			return Result{Scalar: s / float64(n)}, nil
		}
		v, err := estimator.DirectAvg(rel, q.AggAttr, pred)
		if err != nil {
			return Result{}, err
		}
		return Result{Scalar: v}, nil
	case AggMedian:
		v, err := estimator.DirectMedian(rel, q.AggAttr, pred)
		if err != nil {
			return Result{}, err
		}
		return Result{Scalar: v}, nil
	case AggQuantile:
		v, err := estimator.DirectPercentile(rel, q.AggAttr, pred, q.Q)
		if err != nil {
			return Result{}, err
		}
		return Result{Scalar: v}, nil
	case AggVar:
		v, err := estimator.DirectVar(rel, q.AggAttr, pred)
		if err != nil {
			return Result{}, err
		}
		return Result{Scalar: v}, nil
	case AggStd:
		v, err := estimator.DirectVar(rel, q.AggAttr, pred)
		if err != nil {
			return Result{}, err
		}
		return Result{Scalar: math.Sqrt(v)}, nil
	default:
		return Result{}, fmt.Errorf("query: invalid aggregate %v", q.Agg)
	}
}

func execConjunction(rel *relation.Relation, q *Query, udfs UDFs) (Result, error) {
	preds, err := CompileConjunction(q.Conds(), udfs)
	if err != nil {
		return Result{}, err
	}
	switch q.Agg {
	case AggCount:
		v, err := estimator.DirectCountConj(rel, preds...)
		if err != nil {
			return Result{}, err
		}
		return Result{Scalar: v}, nil
	case AggSum:
		v, err := estimator.DirectSumConj(rel, q.AggAttr, preds...)
		if err != nil {
			return Result{}, err
		}
		return Result{Scalar: v}, nil
	case AggAvg:
		v, err := estimator.DirectAvgConj(rel, q.AggAttr, preds...)
		if err != nil {
			return Result{}, err
		}
		return Result{Scalar: v}, nil
	default:
		return Result{}, fmt.Errorf("query: %s does not support AND conjunctions", q.Agg)
	}
}

func execGroupBy(rel *relation.Relation, q *Query) (Result, error) {
	if q.GroupBin {
		// Binned GROUP BY is defined by the released bin layout in the view
		// metadata, which the exact oracle does not carry; it is answered by
		// the estimator paths only.
		return Result{}, fmt.Errorf("query: GROUP BY bin(%s) needs the view's released bin layout and has no exact-oracle form", q.GroupBy)
	}
	groupCol, err := rel.Discrete(q.GroupBy)
	if err != nil {
		return Result{}, err
	}
	switch q.Agg {
	case AggCount:
		counts := make(map[string]float64)
		for _, v := range groupCol {
			counts[v]++
		}
		return Result{Groups: counts, IsGroupBy: true}, nil
	case AggSum, AggAvg:
		vals, err := rel.Numeric(q.AggAttr)
		if err != nil {
			return Result{}, err
		}
		sums := make(map[string]float64)
		counts := make(map[string]float64)
		for i, v := range groupCol {
			x := vals[i]
			if x != x {
				continue
			}
			sums[v] += x
			counts[v]++
		}
		if q.Agg == AggSum {
			return Result{Groups: sums, IsGroupBy: true}, nil
		}
		avgs := make(map[string]float64, len(sums))
		for k, s := range sums {
			if counts[k] > 0 {
				avgs[k] = s / counts[k]
			}
		}
		return Result{Groups: avgs, IsGroupBy: true}, nil
	default:
		return Result{}, fmt.Errorf("query: invalid aggregate %v", q.Agg)
	}
}
