package query

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParse checks the parser never panics, and that any query it accepts
// round-trips through String() to an equivalent parse.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT count(1) FROM R WHERE major = 'Mech. Eng.'",
		"SELECT sum(score) FROM R WHERE major IN ('a', 'b')",
		"SELECT avg(score) FROM R WHERE isEurope(country)",
		"SELECT count(*) FROM R GROUP BY state",
		"SELECT median(x) FROM t WHERE a != NULL",
		"SELECT count(1) FROM R WHERE a = '1' AND b = '2'",
		"SELECT var(x) FROM t",
		"select COUNT ( 1 ) from r where NOT NOT d <> \"x\"",
		"SELECT count(1) FROM R WHERE major = 'O''Brien'",
		"",
		"SELECT",
		"🙂 SELECT count(1)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return // rejections are fine; panics are not
		}
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rejected own rendering %q: %v", src, rendered, err)
		}
		if q2.String() != rendered {
			t.Fatalf("rendering not a fixed point: %q -> %q", rendered, q2.String())
		}
	})
}

// FuzzCompilePredicate checks the cond -> estimator.Predicate compiler on
// arbitrary attribute and value strings: compilation never panics, compiling
// the same condition twice yields the same description (the ChannelCache
// key), distinct IN value sets never alias to one key, and a rendered
// condition re-parses and re-compiles to an equivalent predicate.
func FuzzCompilePredicate(f *testing.F) {
	f.Add("major", "a", "b")
	f.Add("major", "O'Brien", "b, c")
	f.Add("category", "", ", ")
	f.Add("state", "NULL", "null")
	f.Add("x_1", "café", "☃")
	f.Add("in", "not", "and")
	f.Fuzz(func(t *testing.T, attr, v1, v2 string) {
		udfs := UDFs{"isprobe": func(s string) bool { return strings.HasPrefix(s, "p") }}
		joined := v1 + ", " + v2
		probes := []string{v1, v2, joined, "", "probe", "zzz"}

		conds := []*Cond{
			{Kind: CondEq, Attr: attr, Values: []string{v1}},
			{Kind: CondEq, Attr: attr, Values: []string{v1}, Negate: true},
			{Kind: CondIn, Attr: attr, Values: []string{v1, v2}},
			{Kind: CondIn, Attr: attr, Values: []string{v1, v2}, Negate: true},
			{Kind: CondUDF, Attr: attr, UDF: "isProbe"},
		}
		for _, c := range conds {
			pred, err := CompilePredicate(c, udfs)
			if err != nil {
				t.Fatalf("well-formed condition %s failed to compile: %v", c, err)
			}
			again, err := CompilePredicate(c, udfs)
			if err != nil {
				t.Fatalf("second compile of %s failed: %v", c, err)
			}
			if pred.String() != again.String() {
				t.Fatalf("compiling %s twice gave different cache keys: %q vs %q",
					c, pred.String(), again.String())
			}
			for _, pr := range probes {
				if pred.Match(pr) != again.Match(pr) {
					t.Fatalf("compiling %s twice gave different matchers at %q", c, pr)
				}
			}
		}
		if _, err := CompilePredicate(&Cond{Kind: CondUDF, Attr: attr, UDF: "nosuch"}, udfs); err == nil {
			t.Fatal("unknown UDF compiled without error")
		}

		// Cache-key aliasing: IN (v1, v2) and IN ("v1, v2") select different
		// value sets (the joined value is strictly longer than either part),
		// so their descriptions must differ — equal keys would let a
		// ChannelCache serve one query's channel for the other.
		many, err := CompilePredicate(&Cond{Kind: CondIn, Attr: attr, Values: []string{v1, v2}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		one, err := CompilePredicate(&Cond{Kind: CondIn, Attr: attr, Values: []string{joined}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if many.String() == one.String() {
			t.Fatalf("IN (%q, %q) and IN (%q) alias to cache key %q", v1, v2, joined, many.String())
		}
		if !many.Match(v1) || !many.Match(v2) || many.Match(joined) {
			t.Fatalf("IN (%q, %q) matcher wrong on its own values", v1, v2)
		}
		if !one.Match(joined) {
			t.Fatalf("IN (%q) does not match its own value", joined)
		}

		// Quoted round trip: a rendered IN condition must re-parse and
		// re-compile to the same cache key and the same matcher. Invalid
		// UTF-8 is excluded because the lexer normalizes it to U+FFFD.
		if utf8.ValidString(v1) && utf8.ValidString(v2) {
			orig := &Cond{Kind: CondIn, Attr: "d", Values: []string{v1, v2}}
			src := "SELECT count(1) FROM R WHERE " + orig.String()
			q, err := Parse(src)
			if err != nil {
				t.Fatalf("rendered condition %q does not re-parse: %v", orig.String(), err)
			}
			if q.Where == nil || len(q.AndWhere) != 0 {
				t.Fatalf("rendered condition %q re-parsed to a different shape", orig.String())
			}
			p0, err := CompilePredicate(orig, nil)
			if err != nil {
				t.Fatal(err)
			}
			p1, err := CompilePredicate(q.Where, nil)
			if err != nil {
				t.Fatalf("re-parsed condition %s failed to compile: %v", q.Where, err)
			}
			if p0.String() != p1.String() {
				t.Fatalf("cache key drift across render round trip: %q vs %q", p0.String(), p1.String())
			}
			for _, pr := range probes {
				if p0.Match(pr) != p1.Match(pr) {
					t.Fatalf("matcher drift across render round trip at %q", pr)
				}
			}
		}
	})
}
