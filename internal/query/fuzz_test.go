package query

import "testing"

// FuzzParse checks the parser never panics, and that any query it accepts
// round-trips through String() to an equivalent parse.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT count(1) FROM R WHERE major = 'Mech. Eng.'",
		"SELECT sum(score) FROM R WHERE major IN ('a', 'b')",
		"SELECT avg(score) FROM R WHERE isEurope(country)",
		"SELECT count(*) FROM R GROUP BY state",
		"SELECT median(x) FROM t WHERE a != NULL",
		"SELECT count(1) FROM R WHERE a = '1' AND b = '2'",
		"SELECT var(x) FROM t",
		"select COUNT ( 1 ) from r where NOT NOT d <> \"x\"",
		"SELECT count(1) FROM R WHERE major = 'O''Brien'",
		"",
		"SELECT",
		"🙂 SELECT count(1)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return // rejections are fine; panics are not
		}
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rejected own rendering %q: %v", src, rendered, err)
		}
		if q2.String() != rendered {
			t.Fatalf("rendering not a fixed point: %q -> %q", rendered, q2.String())
		}
	})
}
