// Package query implements a small SQL dialect covering PrivateClean's
// query class (Section 3.2.2 of the paper):
//
//	SELECT agg FROM table [WHERE cond] [GROUP BY attr]
//
// where agg is COUNT(1|*), SUM(a), or AVG(a) over a numerical attribute a,
// and cond is a condition over a single discrete attribute d:
//
//	d = 'v' | d != 'v' | d <> 'v' | d IN ('v1', 'v2', ...)
//	| udf(d) | NOT cond
//
// UDF predicates (e.g. the paper's isEurope(country)) are resolved against a
// registry supplied at execution/compilation time.
//
// The package provides exact execution against a relation (used for ground
// truth) and compilation of the WHERE clause into an estimator.Predicate
// (used for private-relation estimation).
package query

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokPunct // single punctuation: ( ) , = and the multi-rune != <>
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of query"
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lex splits a query string into tokens.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	runes := []rune(src)
	for i < len(runes) {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '\'' || r == '"':
			quote := r
			j := i + 1
			var sb strings.Builder
			closed := false
			for j < len(runes) {
				if runes[j] == quote {
					// doubled quote is an escaped quote
					if j+1 < len(runes) && runes[j+1] == quote {
						sb.WriteRune(quote)
						j += 2
						continue
					}
					closed = true
					break
				}
				sb.WriteRune(runes[j])
				j++
			}
			if !closed {
				return nil, fmt.Errorf("query: unterminated string starting at position %d", i)
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: i})
			i = j + 1
		case r == '!' && i+1 < len(runes) && runes[i+1] == '=':
			toks = append(toks, token{kind: tokPunct, text: "!=", pos: i})
			i += 2
		case r == '<' && i+1 < len(runes) && runes[i+1] == '>':
			toks = append(toks, token{kind: tokPunct, text: "!=", pos: i})
			i += 2
		case r == '(' || r == ')' || r == ',' || r == '=' || r == '*':
			toks = append(toks, token{kind: tokPunct, text: string(r), pos: i})
			i++
		case unicode.IsDigit(r) || (r == '-' && i+1 < len(runes) && unicode.IsDigit(runes[i+1])):
			j := i + 1
			for j < len(runes) && (unicode.IsDigit(runes[j]) || runes[j] == '.') {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: string(runes[i:j]), pos: i})
			i = j
		case unicode.IsLetter(r) || r == '_':
			j := i + 1
			for j < len(runes) && (unicode.IsLetter(runes[j]) || unicode.IsDigit(runes[j]) || runes[j] == '_' || runes[j] == '.') {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: string(runes[i:j]), pos: i})
			i = j
		default:
			return nil, fmt.Errorf("query: unexpected character %q at position %d", r, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(runes)})
	return toks, nil
}
