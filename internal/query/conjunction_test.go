package query

import (
	"testing"

	"privateclean/internal/relation"
)

func conjTestRel(t *testing.T) *relation.Relation {
	t.Helper()
	schema := relation.MustSchema(
		relation.Column{Name: "major", Kind: relation.Discrete},
		relation.Column{Name: "section", Kind: relation.Discrete},
		relation.Column{Name: "score", Kind: relation.Numeric},
	)
	r, err := relation.FromColumns(schema,
		map[string][]float64{"score": {4, 3, 1, 5, 2}},
		map[string][]string{
			"major":   {"ME", "ME", "EE", "EE", "CS"},
			"section": {"1", "2", "1", "2", "1"},
		})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestParseConjunction(t *testing.T) {
	q, err := Parse("SELECT count(1) FROM R WHERE major = 'ME' AND section = '1'")
	if err != nil {
		t.Fatal(err)
	}
	if q.Where == nil || len(q.AndWhere) != 1 {
		t.Fatalf("conjunction = %+v", q)
	}
	conds := q.Conds()
	if len(conds) != 2 || conds[0].Attr != "major" || conds[1].Attr != "section" {
		t.Fatalf("conds = %+v", conds)
	}
	// Three conjuncts.
	q, err = Parse("SELECT count(1) FROM R WHERE a = '1' AND b = '2' AND NOT c = '3'")
	if err != nil || len(q.AndWhere) != 2 {
		t.Fatalf("triple conjunction: %+v, %v", q, err)
	}
	if !q.AndWhere[1].Negate {
		t.Fatal("NOT in conjunct lost")
	}
	// Round trip.
	q2, err := Parse(q.String())
	if err != nil || q2.String() != q.String() {
		t.Fatalf("round trip: %q vs %q (%v)", q.String(), q2.String(), err)
	}
	// Dangling AND.
	if _, err := Parse("SELECT count(1) FROM R WHERE a = '1' AND"); err == nil {
		t.Fatal("want error for dangling AND")
	}
}

func TestExecConjunction(t *testing.T) {
	r := conjTestRel(t)
	q, _ := Parse("SELECT count(1) FROM R WHERE major = 'ME' AND section = '1'")
	res, err := Exec(r, q, nil)
	if err != nil || res.Scalar != 1 {
		t.Fatalf("count = %v, %v", res, err)
	}
	q, _ = Parse("SELECT sum(score) FROM R WHERE major = 'EE' AND section = '2'")
	res, err = Exec(r, q, nil)
	if err != nil || res.Scalar != 5 {
		t.Fatalf("sum = %v, %v", res, err)
	}
	q, _ = Parse("SELECT avg(score) FROM R WHERE major = 'EE' AND section = '1'")
	res, err = Exec(r, q, nil)
	if err != nil || res.Scalar != 1 {
		t.Fatalf("avg = %v, %v", res, err)
	}
	// Extension aggregates reject conjunctions.
	q, _ = Parse("SELECT median(score) FROM R WHERE major = 'EE' AND section = '1'")
	if _, err := Exec(r, q, nil); err == nil {
		t.Fatal("want error for median with AND")
	}
}

func TestCompileConjunctionMergesSameAttr(t *testing.T) {
	q, err := Parse("SELECT count(1) FROM R WHERE major IN ('ME','EE') AND major != 'EE' AND section = '1'")
	if err != nil {
		t.Fatal(err)
	}
	preds, err := CompileConjunction(q.Conds(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 2 {
		t.Fatalf("want 2 merged predicates, got %d", len(preds))
	}
	// The merged major predicate accepts ME only.
	var majorPred, sectionPred bool
	for _, p := range preds {
		switch p.Attr {
		case "major":
			majorPred = p.Match("ME") && !p.Match("EE") && !p.Match("CS")
		case "section":
			sectionPred = p.Match("1") && !p.Match("2")
		}
	}
	if !majorPred || !sectionPred {
		t.Fatalf("merged predicates wrong: %+v", preds)
	}
	// Exec agrees with the row-level truth: ME in section 1 -> 1 row.
	r := conjTestRel(t)
	res, err := Exec(r, q, nil)
	if err != nil || res.Scalar != 1 {
		t.Fatalf("merged exec = %v, %v", res, err)
	}
}

// Merged same-attribute predicates used to all render as "and(attr)", so a
// server-side channel cache conflated every conjunction over one attribute.
// Distinct conjunctions must keep distinct renderings.
func TestCompileConjunctionMergeKeepsDistinctDescriptions(t *testing.T) {
	compile := func(src string) string {
		t.Helper()
		q, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		preds, err := CompileConjunction(q.Conds(), nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range preds {
			if p.Attr == "major" {
				return p.String()
			}
		}
		t.Fatalf("no merged major predicate for %q", src)
		return ""
	}
	a := compile("SELECT count(1) FROM R WHERE major IN ('ME','EE') AND major != 'EE'")
	b := compile("SELECT count(1) FROM R WHERE major IN ('ME','EE') AND major != 'ME'")
	if a == b {
		t.Fatalf("distinct merged conjunctions share rendering %q", a)
	}
}

func TestCompileConjunctionBadUDF(t *testing.T) {
	q, err := Parse("SELECT count(1) FROM R WHERE isX(major) AND section = '1'")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileConjunction(q.Conds(), nil); err == nil {
		t.Fatal("want error for unknown UDF in conjunction")
	}
}
