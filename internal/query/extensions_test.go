package query

import (
	"math"
	"testing"
)

func TestParseExtensionAggregates(t *testing.T) {
	cases := map[string]AggKind{
		"SELECT median(score) FROM R":   AggMedian,
		"SELECT var(score) FROM R":      AggVar,
		"SELECT variance(score) FROM R": AggVar,
		"SELECT std(score) FROM R":      AggStd,
		"SELECT stddev(score) FROM R":   AggStd,
	}
	for src, want := range cases {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if q.Agg != want || q.AggAttr != "score" {
			t.Fatalf("%q parsed as %v(%s)", src, q.Agg, q.AggAttr)
		}
		// Round trip.
		if _, err := Parse(q.String()); err != nil {
			t.Fatalf("reparse %q: %v", q.String(), err)
		}
	}
}

func TestExecExtensionAggregates(t *testing.T) {
	r := testRelation(t) // scores 4,3,1,5,2,NaN over ME,ME,EE,CS,EE,ME
	q, _ := Parse("SELECT median(score) FROM R")
	res, err := Exec(r, q, nil)
	if err != nil || res.Scalar != 3 {
		t.Fatalf("median = %v, %v", res, err)
	}
	q, _ = Parse("SELECT median(score) FROM R WHERE major = 'EE'")
	res, err = Exec(r, q, nil)
	if err != nil || res.Scalar != 1.5 {
		t.Fatalf("predicate median = %v, %v", res, err)
	}
	q, _ = Parse("SELECT var(score) FROM R WHERE major = 'EE'")
	res, err = Exec(r, q, nil)
	if err != nil || res.Scalar != 0.25 {
		t.Fatalf("var = %v, %v", res, err)
	}
	q, _ = Parse("SELECT std(score) FROM R WHERE major = 'EE'")
	res, err = Exec(r, q, nil)
	if err != nil || math.Abs(res.Scalar-0.5) > 1e-12 {
		t.Fatalf("std = %v, %v", res, err)
	}
	// Var over a single row errors.
	q, _ = Parse("SELECT var(score) FROM R WHERE major = 'CS'")
	if _, err := Exec(r, q, nil); err == nil {
		t.Fatal("want error for variance of one row")
	}
	// GROUP BY with an extension aggregate is rejected.
	q, _ = Parse("SELECT median(score) FROM R GROUP BY major")
	if _, err := Exec(r, q, nil); err == nil {
		t.Fatal("want error for GROUP BY median")
	}
}
