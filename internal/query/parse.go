package query

import (
	"fmt"
	"strconv"
	"strings"

	"privateclean/internal/faults"
	"privateclean/internal/telemetry"
)

// AggKind identifies the aggregate of a query.
type AggKind int

const (
	// AggCount is COUNT(1) or COUNT(*).
	AggCount AggKind = iota
	// AggSum is SUM(a) over a numerical attribute.
	AggSum
	// AggAvg is AVG(a) over a numerical attribute.
	AggAvg
	// AggMedian is MEDIAN(a) — a Section 10 extension aggregate.
	AggMedian
	// AggVar is VAR(a) — a Section 10 extension aggregate.
	AggVar
	// AggStd is STD(a) — a Section 10 extension aggregate.
	AggStd
	// AggQuantile is QUANTILE(a, q) with q in [0,1]; QUANTILE(a, 0.5) is
	// MEDIAN(a).
	AggQuantile
)

// String returns the SQL spelling of the aggregate.
func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMedian:
		return "median"
	case AggVar:
		return "var"
	case AggStd:
		return "std"
	case AggQuantile:
		return "quantile"
	default:
		return fmt.Sprintf("AggKind(%d)", int(k))
	}
}

// CondKind identifies the shape of a WHERE condition.
type CondKind int

const (
	// CondEq is attr = 'value'.
	CondEq CondKind = iota
	// CondIn is attr IN ('v1', ...).
	CondIn
	// CondUDF is udf(attr).
	CondUDF
)

// Cond is a parsed WHERE condition over a single discrete attribute.
type Cond struct {
	Kind   CondKind
	Attr   string
	Values []string // CondEq: 1 value; CondIn: >= 1 values
	UDF    string   // CondUDF: registered function name
	Negate bool     // NOT cond, attr != value, NOT IN
}

// quoteValue renders a value as a SQL string literal, doubling embedded
// single quotes so String() output always re-parses.
func quoteValue(v string) string {
	return "'" + strings.ReplaceAll(v, "'", "''") + "'"
}

// String renders the condition back to SQL.
func (c *Cond) String() string {
	switch c.Kind {
	case CondEq:
		op := "="
		if c.Negate {
			op = "!="
		}
		return fmt.Sprintf("%s %s %s", c.Attr, op, quoteValue(c.Values[0]))
	case CondIn:
		quoted := make([]string, len(c.Values))
		for i, v := range c.Values {
			quoted[i] = quoteValue(v)
		}
		op := "IN"
		if c.Negate {
			op = "NOT IN"
		}
		return fmt.Sprintf("%s %s (%s)", c.Attr, op, strings.Join(quoted, ", "))
	case CondUDF:
		s := fmt.Sprintf("%s(%s)", c.UDF, c.Attr)
		if c.Negate {
			s = "NOT " + s
		}
		return s
	default:
		return "<invalid cond>"
	}
}

// Query is a parsed aggregate query.
type Query struct {
	Agg     AggKind
	AggAttr string  // numerical attribute for SUM/AVG; empty for COUNT
	Q       float64 // quantile level for AggQuantile (0.5 for MEDIAN's spelling)
	Table   string
	Where   *Cond // first (or only) WHERE conjunct; nil when absent
	// AndWhere holds additional conjuncts after the first when the WHERE
	// clause is a conjunction cond_1 AND cond_2 AND ... (the Section 10
	// SPJ-view extension).
	AndWhere []*Cond
	GroupBy  string // grouping attribute; empty when absent
	// GroupBin is true for GROUP BY bin(attr): grouping over the released
	// bin layout of the numeric attribute GroupBy instead of the distinct
	// values of a discrete one.
	GroupBin bool
}

// Conds returns all WHERE conjuncts in order (nil when there is no WHERE
// clause).
func (q *Query) Conds() []*Cond {
	if q.Where == nil {
		return nil
	}
	out := make([]*Cond, 0, 1+len(q.AndWhere))
	out = append(out, q.Where)
	out = append(out, q.AndWhere...)
	return out
}

// String renders the query back to SQL.
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	switch q.Agg {
	case AggCount:
		sb.WriteString("count(1)")
	case AggQuantile:
		fmt.Fprintf(&sb, "quantile(%s, %g)", q.AggAttr, q.Q)
	default:
		fmt.Fprintf(&sb, "%s(%s)", q.Agg, q.AggAttr)
	}
	fmt.Fprintf(&sb, " FROM %s", q.Table)
	for i, c := range q.Conds() {
		if i == 0 {
			sb.WriteString(" WHERE ")
		} else {
			sb.WriteString(" AND ")
		}
		sb.WriteString(c.String())
	}
	if q.GroupBy != "" {
		if q.GroupBin {
			fmt.Fprintf(&sb, " GROUP BY bin(%s)", q.GroupBy)
		} else {
			fmt.Fprintf(&sb, " GROUP BY %s", q.GroupBy)
		}
	}
	return sb.String()
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokIdent || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("query: expected %s, got %s", strings.ToUpper(kw), t)
	}
	return nil
}

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tokPunct || t.text != s {
		return fmt.Errorf("query: expected %q, got %s", s, t)
	}
	return nil
}

func (p *parser) isKeyword(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

// Parse parses one query. Failures are classified as faults.ErrBadQuery.
// Parse outcomes are counted in the process telemetry registry; the query
// text itself never reaches telemetry (predicate constants are data).
func Parse(src string) (*Query, error) {
	tel := telemetry.Default()
	q, err := parse(src)
	if err != nil {
		tel.Metrics.Counter("privateclean_queries_parsed_total",
			"Parsed queries, by outcome.", telemetry.L("outcome", "error")).Inc()
		return nil, faults.Wrap(faults.ErrBadQuery, err)
	}
	tel.Metrics.Counter("privateclean_queries_parsed_total",
		"Parsed queries, by outcome.", telemetry.L("outcome", "ok")).Inc()
	return q, nil
}

func parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q := &Query{}

	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	if err := p.parseAgg(q); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("query: expected table name, got %s", t)
	}
	q.Table = t.text

	if p.isKeyword(p.peek(), "where") {
		p.next()
		cond, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		q.Where = cond
		for p.isKeyword(p.peek(), "and") {
			p.next()
			more, err := p.parseCond()
			if err != nil {
				return nil, err
			}
			q.AndWhere = append(q.AndWhere, more)
		}
	}
	if p.isKeyword(p.peek(), "group") {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		t := p.next()
		if t.kind != tokIdent {
			return nil, fmt.Errorf("query: expected attribute after GROUP BY, got %s", t)
		}
		if strings.EqualFold(t.text, "bin") && p.peek().kind == tokPunct && p.peek().text == "(" {
			p.next()
			arg := p.next()
			if arg.kind != tokIdent {
				return nil, fmt.Errorf("query: GROUP BY bin needs a numerical attribute, got %s", arg)
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			q.GroupBy = arg.text
			q.GroupBin = true
		} else {
			q.GroupBy = t.text
		}
	}
	if t := p.next(); t.kind != tokEOF {
		return nil, fmt.Errorf("query: unexpected trailing %s", t)
	}
	if q.GroupBy != "" && q.Where != nil {
		return nil, fmt.Errorf("query: GROUP BY with WHERE is not supported by the PrivateClean query class")
	}
	return q, nil
}

func (p *parser) parseAgg(q *Query) error {
	t := p.next()
	if t.kind != tokIdent {
		return fmt.Errorf("query: expected aggregate, got %s", t)
	}
	switch strings.ToLower(t.text) {
	case "count":
		q.Agg = AggCount
	case "sum":
		q.Agg = AggSum
	case "avg":
		q.Agg = AggAvg
	case "median":
		q.Agg = AggMedian
	case "var", "variance":
		q.Agg = AggVar
	case "std", "stddev":
		q.Agg = AggStd
	case "quantile", "percentile":
		q.Agg = AggQuantile
	default:
		return fmt.Errorf("query: unsupported aggregate %q (want count, sum, avg, median, quantile, var, or std)", t.text)
	}
	if err := p.expectPunct("("); err != nil {
		return err
	}
	arg := p.next()
	switch q.Agg {
	case AggCount:
		ok := (arg.kind == tokNumber && arg.text == "1") || (arg.kind == tokPunct && arg.text == "*")
		if !ok {
			return fmt.Errorf("query: count takes 1 or *, got %s", arg)
		}
	default:
		if arg.kind != tokIdent {
			return fmt.Errorf("query: %s needs a numerical attribute, got %s", q.Agg, arg)
		}
		q.AggAttr = arg.text
	}
	if q.Agg == AggQuantile {
		if err := p.expectPunct(","); err != nil {
			return err
		}
		t := p.next()
		if t.kind != tokNumber {
			return fmt.Errorf("query: quantile needs a numeric level in [0,1], got %s", t)
		}
		level, err := strconv.ParseFloat(t.text, 64)
		if err != nil || level < 0 || level > 1 {
			return fmt.Errorf("query: quantile level %q out of [0,1]", t.text)
		}
		q.Q = level
	}
	return p.expectPunct(")")
}

func (p *parser) parseCond() (*Cond, error) {
	if p.isKeyword(p.peek(), "not") {
		p.next()
		inner, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		inner.Negate = !inner.Negate
		return inner, nil
	}
	t := p.next()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("query: expected attribute or UDF in WHERE, got %s", t)
	}
	name := t.text

	nxt := p.peek()
	switch {
	case nxt.kind == tokPunct && nxt.text == "(":
		// udf(attr)
		p.next()
		arg := p.next()
		if arg.kind != tokIdent {
			return nil, fmt.Errorf("query: UDF %s needs an attribute argument, got %s", name, arg)
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &Cond{Kind: CondUDF, Attr: arg.text, UDF: name}, nil

	case nxt.kind == tokPunct && (nxt.text == "=" || nxt.text == "!="):
		p.next()
		v, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		return &Cond{Kind: CondEq, Attr: name, Values: []string{v}, Negate: nxt.text == "!="}, nil

	case p.isKeyword(nxt, "in") || p.isKeyword(nxt, "not"):
		negate := false
		if p.isKeyword(nxt, "not") {
			p.next()
			negate = true
		}
		if err := p.expectKeyword("in"); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var values []string
		for {
			v, err := p.parseValue()
			if err != nil {
				return nil, err
			}
			values = append(values, v)
			t := p.next()
			if t.kind == tokPunct && t.text == "," {
				continue
			}
			if t.kind == tokPunct && t.text == ")" {
				break
			}
			return nil, fmt.Errorf("query: expected , or ) in IN list, got %s", t)
		}
		return &Cond{Kind: CondIn, Attr: name, Values: values, Negate: negate}, nil

	default:
		return nil, fmt.Errorf("query: expected =, !=, IN, or ( after %q, got %s", name, nxt)
	}
}

// parseValue accepts a string literal, a number (rendered verbatim), a
// bareword, or the keyword NULL (mapped to the relation.Null sentinel by the
// caller via the literal text "NULL").
func (p *parser) parseValue() (string, error) {
	t := p.next()
	switch t.kind {
	case tokString, tokNumber:
		return t.text, nil
	case tokIdent:
		if strings.EqualFold(t.text, "null") {
			return "NULL", nil
		}
		return t.text, nil
	default:
		return "", fmt.Errorf("query: expected value, got %s", t)
	}
}
