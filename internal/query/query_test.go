package query

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"privateclean/internal/relation"
)

func TestParseCount(t *testing.T) {
	q, err := Parse("SELECT count(1) FROM R WHERE major = 'Mech. Eng.'")
	if err != nil {
		t.Fatal(err)
	}
	if q.Agg != AggCount || q.Table != "R" {
		t.Fatalf("q = %+v", q)
	}
	w := q.Where
	if w == nil || w.Kind != CondEq || w.Attr != "major" || w.Values[0] != "Mech. Eng." || w.Negate {
		t.Fatalf("where = %+v", w)
	}
}

func TestParseCountStar(t *testing.T) {
	q, err := Parse("select COUNT(*) from evals")
	if err != nil {
		t.Fatal(err)
	}
	if q.Agg != AggCount || q.Table != "evals" || q.Where != nil {
		t.Fatalf("q = %+v", q)
	}
}

func TestParseSumAvg(t *testing.T) {
	q, err := Parse("SELECT sum(score) FROM R")
	if err != nil || q.Agg != AggSum || q.AggAttr != "score" {
		t.Fatalf("sum: %+v, %v", q, err)
	}
	q, err = Parse("SELECT avg(score) FROM R WHERE major != 'Math'")
	if err != nil || q.Agg != AggAvg || !q.Where.Negate {
		t.Fatalf("avg: %+v, %v", q, err)
	}
}

func TestParseIn(t *testing.T) {
	q, err := Parse("SELECT count(1) FROM R WHERE major IN ('ME', 'EE', 'CS')")
	if err != nil {
		t.Fatal(err)
	}
	w := q.Where
	if w.Kind != CondIn || len(w.Values) != 3 || w.Values[2] != "CS" {
		t.Fatalf("where = %+v", w)
	}
	q, err = Parse("SELECT count(1) FROM R WHERE major NOT IN ('ME')")
	if err != nil || !q.Where.Negate {
		t.Fatalf("not in: %+v, %v", q, err)
	}
}

func TestParseUDF(t *testing.T) {
	q, err := Parse("SELECT avg(score) FROM R WHERE isEurope(country)")
	if err != nil {
		t.Fatal(err)
	}
	w := q.Where
	if w.Kind != CondUDF || w.UDF != "isEurope" || w.Attr != "country" {
		t.Fatalf("where = %+v", w)
	}
	q, err = Parse("SELECT count(1) FROM R WHERE NOT isEurope(country)")
	if err != nil || !q.Where.Negate {
		t.Fatalf("not udf: %+v, %v", q, err)
	}
}

func TestParseDoubleNegation(t *testing.T) {
	q, err := Parse("SELECT count(1) FROM R WHERE NOT NOT major = 'x'")
	if err != nil || q.Where.Negate {
		t.Fatalf("double negation: %+v, %v", q, err)
	}
}

func TestParseGroupBy(t *testing.T) {
	q, err := Parse("SELECT count(1) FROM R GROUP BY ca_state")
	if err != nil || q.GroupBy != "ca_state" {
		t.Fatalf("group by: %+v, %v", q, err)
	}
}

func TestParseNullLiteral(t *testing.T) {
	q, err := Parse("SELECT count(1) FROM R WHERE sensor_id != NULL")
	if err != nil {
		t.Fatal(err)
	}
	if q.Where.Values[0] != relation.Null || !q.Where.Negate {
		t.Fatalf("where = %+v", q.Where)
	}
}

func TestParseNumberAndBarewordValues(t *testing.T) {
	q, err := Parse("SELECT count(1) FROM R WHERE section = 3")
	if err != nil || q.Where.Values[0] != "3" {
		t.Fatalf("number literal: %+v, %v", q, err)
	}
	q, err = Parse("SELECT count(1) FROM R WHERE major = EECS")
	if err != nil || q.Where.Values[0] != "EECS" {
		t.Fatalf("bareword: %+v, %v", q, err)
	}
}

func TestParseQuoteEscapes(t *testing.T) {
	q, err := Parse(`SELECT count(1) FROM R WHERE major = 'O''Brien Hall'`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Where.Values[0] != "O'Brien Hall" {
		t.Fatalf("escaped value = %q", q.Where.Values[0])
	}
	q, err = Parse(`SELECT count(1) FROM R WHERE major = "EE and CS"`)
	if err != nil || q.Where.Values[0] != "EE and CS" {
		t.Fatalf("double-quoted value: %+v, %v", q, err)
	}
}

func TestParseNotEqualSpellings(t *testing.T) {
	for _, src := range []string{
		"SELECT count(1) FROM R WHERE a != 'x'",
		"SELECT count(1) FROM R WHERE a <> 'x'",
	} {
		q, err := Parse(src)
		if err != nil || !q.Where.Negate {
			t.Fatalf("%q: %+v, %v", src, q, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"INSERT INTO R",
		"SELECT max(x) FROM R",
		"SELECT count(2) FROM R",
		"SELECT count(1) R",
		"SELECT count(1) FROM",
		"SELECT count(1) FROM R WHERE",
		"SELECT count(1) FROM R WHERE major =",
		"SELECT count(1) FROM R WHERE major IN ()",
		"SELECT count(1) FROM R WHERE major IN ('a' 'b')",
		"SELECT count(1) FROM R WHERE major ~ 'x'",
		"SELECT count(1) FROM R trailing junk",
		"SELECT count(1) FROM R GROUP ca_state",
		"SELECT count(1) FROM R GROUP BY",
		"SELECT sum() FROM R",
		"SELECT sum(1) FROM R",
		"SELECT count(1) FROM R WHERE f(1)",
		"SELECT count(1) FROM R WHERE 'lit' = 'x'",
		"SELECT count(1) FROM R WHERE major = 'unterminated",
		"SELECT count(1) FROM R WHERE a = 'x' GROUP BY a",
		"SELECT @bad FROM R",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

// Parse(q.String()) is a fixed point: rendering and reparsing yields the
// same query.
func TestParseStringRoundTrip(t *testing.T) {
	srcs := []string{
		"SELECT count(1) FROM R WHERE major = 'ME'",
		"SELECT sum(score) FROM R WHERE major != 'ME'",
		"SELECT avg(score) FROM R WHERE major IN ('a', 'b')",
		"SELECT count(1) FROM R WHERE major NOT IN ('a')",
		"SELECT avg(score) FROM R WHERE isEurope(country)",
		"SELECT count(1) FROM R WHERE NOT isEurope(country)",
		"SELECT count(1) FROM R GROUP BY state",
		"SELECT sum(score) FROM R",
	}
	for _, src := range srcs {
		q1, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		q2, err := Parse(q1.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", q1.String(), err)
		}
		if q1.String() != q2.String() {
			t.Fatalf("round trip: %q -> %q", q1.String(), q2.String())
		}
	}
}

// Property: random IN-lists of simple values round-trip.
func TestParseInRoundTripProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 8 {
			raw = raw[:8]
		}
		vals := make([]string, len(raw))
		for i, v := range raw {
			vals[i] = "v" + string(rune('a'+v%26))
		}
		src := "SELECT count(1) FROM R WHERE d IN ('" + strings.Join(vals, "', '") + "')"
		q, err := Parse(src)
		if err != nil {
			return false
		}
		if len(q.Where.Values) != len(vals) {
			return false
		}
		q2, err := Parse(q.String())
		if err != nil {
			return false
		}
		return q.String() == q2.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func testRelation(t *testing.T) *relation.Relation {
	t.Helper()
	schema := relation.MustSchema(
		relation.Column{Name: "major", Kind: relation.Discrete},
		relation.Column{Name: "score", Kind: relation.Numeric},
	)
	r, err := relation.FromColumns(schema,
		map[string][]float64{"score": {4, 3, 1, 5, 2, math.NaN()}},
		map[string][]string{"major": {"ME", "ME", "EE", "CS", "EE", "ME"}})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestExecCount(t *testing.T) {
	r := testRelation(t)
	q, _ := Parse("SELECT count(1) FROM R WHERE major = 'ME'")
	res, err := Exec(r, q, nil)
	if err != nil || res.Scalar != 3 {
		t.Fatalf("count = %v, %v", res, err)
	}
	q, _ = Parse("SELECT count(1) FROM R")
	res, err = Exec(r, q, nil)
	if err != nil || res.Scalar != 6 {
		t.Fatalf("total count = %v, %v", res, err)
	}
}

func TestExecSumAvg(t *testing.T) {
	r := testRelation(t)
	q, _ := Parse("SELECT sum(score) FROM R WHERE major = 'EE'")
	res, err := Exec(r, q, nil)
	if err != nil || res.Scalar != 3 {
		t.Fatalf("sum = %v, %v", res, err)
	}
	q, _ = Parse("SELECT avg(score) FROM R WHERE major = 'EE'")
	res, err = Exec(r, q, nil)
	if err != nil || res.Scalar != 1.5 {
		t.Fatalf("avg = %v, %v", res, err)
	}
	// Predicate-free sum and avg skip the NaN cell.
	q, _ = Parse("SELECT sum(score) FROM R")
	res, err = Exec(r, q, nil)
	if err != nil || res.Scalar != 15 {
		t.Fatalf("total sum = %v, %v", res, err)
	}
	q, _ = Parse("SELECT avg(score) FROM R")
	res, err = Exec(r, q, nil)
	if err != nil || res.Scalar != 3 {
		t.Fatalf("total avg = %v, %v", res, err)
	}
}

func TestExecUDF(t *testing.T) {
	r := testRelation(t)
	udfs := UDFs{"iseng": func(v string) bool { return v == "ME" || v == "EE" }}
	q, err := Parse("SELECT count(1) FROM R WHERE isEng(major)")
	if err != nil {
		t.Fatal(err)
	}
	// UDF lookup is case-insensitive against the lower-case registry.
	res, err := Exec(r, q, udfs)
	if err != nil || res.Scalar != 5 {
		t.Fatalf("udf count = %v, %v", res, err)
	}
	q.Where.UDF = "missing"
	if _, err := Exec(r, q, udfs); err == nil {
		t.Fatal("want error for unknown UDF")
	}
}

func TestExecGroupBy(t *testing.T) {
	r := testRelation(t)
	q, _ := Parse("SELECT count(1) FROM R GROUP BY major")
	res, err := Exec(r, q, nil)
	if err != nil || !res.IsGroupBy {
		t.Fatalf("res = %+v, %v", res, err)
	}
	if res.Groups["ME"] != 3 || res.Groups["EE"] != 2 || res.Groups["CS"] != 1 {
		t.Fatalf("groups = %v", res.Groups)
	}
	keys := res.GroupKeys()
	if len(keys) != 3 || keys[0] != "CS" {
		t.Fatalf("keys = %v", keys)
	}
	q, _ = Parse("SELECT sum(score) FROM R GROUP BY major")
	res, err = Exec(r, q, nil)
	if err != nil || res.Groups["ME"] != 7 {
		t.Fatalf("sum groups = %v, %v", res.Groups, err)
	}
	q, _ = Parse("SELECT avg(score) FROM R GROUP BY major")
	res, err = Exec(r, q, nil)
	if err != nil || res.Groups["EE"] != 1.5 {
		t.Fatalf("avg groups = %v, %v", res.Groups, err)
	}
}

func TestExecErrors(t *testing.T) {
	r := testRelation(t)
	q, _ := Parse("SELECT sum(nope) FROM R WHERE major = 'ME'")
	if _, err := Exec(r, q, nil); err == nil {
		t.Fatal("want error for unknown aggregate column")
	}
	q, _ = Parse("SELECT sum(nope) FROM R")
	if _, err := Exec(r, q, nil); err == nil {
		t.Fatal("want error for unknown aggregate column (no predicate)")
	}
	q, _ = Parse("SELECT count(1) FROM R GROUP BY nope")
	if _, err := Exec(r, q, nil); err == nil {
		t.Fatal("want error for unknown group attribute")
	}
	q, _ = Parse("SELECT avg(score) FROM R WHERE major = 'nothere'")
	if _, err := Exec(r, q, nil); err == nil {
		t.Fatal("want error for avg over empty selection")
	}
}

func TestCompilePredicate(t *testing.T) {
	cases := []struct {
		src   string
		value string
		want  bool
	}{
		{"SELECT count(1) FROM R WHERE a = 'x'", "x", true},
		{"SELECT count(1) FROM R WHERE a = 'x'", "y", false},
		{"SELECT count(1) FROM R WHERE a != 'x'", "x", false},
		{"SELECT count(1) FROM R WHERE a IN ('x','y')", "y", true},
		{"SELECT count(1) FROM R WHERE a NOT IN ('x','y')", "y", false},
	}
	for _, c := range cases {
		q, err := Parse(c.src)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := CompilePredicate(q.Where, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := pred.Match(c.value); got != c.want {
			t.Errorf("%q match %q = %v, want %v", c.src, c.value, got, c.want)
		}
	}
	if _, err := CompilePredicate(&Cond{Kind: CondKind(99)}, nil); err == nil {
		t.Fatal("want error for invalid cond kind")
	}
}

func TestAggKindString(t *testing.T) {
	if AggCount.String() != "count" || AggSum.String() != "sum" || AggAvg.String() != "avg" {
		t.Fatal("agg names wrong")
	}
	if AggKind(9).String() != "AggKind(9)" {
		t.Fatal("unknown agg name wrong")
	}
}

func TestCondString(t *testing.T) {
	for _, src := range []string{
		"SELECT count(1) FROM R WHERE a = 'x'",
		"SELECT count(1) FROM R WHERE a NOT IN ('x')",
		"SELECT count(1) FROM R WHERE NOT f(a)",
	} {
		q, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if q.Where.String() == "" {
			t.Fatalf("empty cond string for %q", src)
		}
	}
	if (&Cond{Kind: CondKind(42)}).String() != "<invalid cond>" {
		t.Fatal("invalid cond rendering")
	}
}
