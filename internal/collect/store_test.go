package collect

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"privateclean/internal/faults"
	"privateclean/internal/privacy"
	"privateclean/internal/relation"
)

func storeFixture(t *testing.T) (string, relation.Schema, string) {
	t.Helper()
	schema, err := relation.NewSchema(
		relation.Column{Name: "major", Kind: relation.Discrete},
		relation.Column{Name: "score", Kind: relation.Numeric},
	)
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(t.TempDir(), "store.json"), schema, "mech-fingerprint"
}

func batchPayload(t *testing.T, id string, rows int) []byte {
	t.Helper()
	b := Batch{ID: id, Mechanism: "mech-fingerprint"}
	for i := 0; i < rows; i++ {
		b.Reports = append(b.Reports, privacy.Report{
			Discrete: map[string]string{"major": "CS"},
			Numeric:  map[string]float64{"score": float64(10 + i)},
		})
	}
	payload, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

func TestStoreFoldAndReload(t *testing.T) {
	path, schema, mech := storeFixture(t)
	s, err := OpenStore(path, schema, mech)
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Fold(1, [][]byte{batchPayload(t, "b1", 3), batchPayload(t, "b2", 2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(n) != 2 || s.Rows() != 5 || s.AppliedSeq() != 1 {
		t.Fatalf("fold = %d batches, %d rows, seq %d", len(n), s.Rows(), s.AppliedSeq())
	}

	// The checkpoint is on disk: a fresh store resumes exactly.
	s2, err := OpenStore(path, schema, mech)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Rows() != 5 || s2.AppliedSeq() != 1 || !s2.HasBatch("b1") || !s2.HasBatch("b2") {
		t.Fatalf("reload lost state: rows %d seq %d", s2.Rows(), s2.AppliedSeq())
	}
	// And the reloaded collector keeps accumulating (regression for the
	// omitempty nil-map reload hazard).
	if _, err := s2.Fold(2, [][]byte{batchPayload(t, "b3", 1)}); err != nil {
		t.Fatal(err)
	}
	if s2.Rows() != 6 {
		t.Fatalf("post-reload fold: rows %d, want 6", s2.Rows())
	}
}

// TestStoreFoldIdempotence covers both exactly-once layers: a segment at or
// below the watermark is skipped wholesale, and a batch ID that appears in
// two segments folds only once.
func TestStoreFoldIdempotence(t *testing.T) {
	path, schema, mech := storeFixture(t)
	s, err := OpenStore(path, schema, mech)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fold(1, [][]byte{batchPayload(t, "dup", 3)}); err != nil {
		t.Fatal(err)
	}
	// Same segment replayed (crash between checkpoint and segment delete).
	n, err := s.Fold(1, [][]byte{batchPayload(t, "dup", 3)})
	if err != nil || len(n) != 0 {
		t.Fatalf("replayed segment folded %d batches (err %v), want 0", len(n), err)
	}
	// Same batch ID in a later segment (client retry crossed a rotation).
	n, err = s.Fold(2, [][]byte{batchPayload(t, "dup", 3), batchPayload(t, "fresh", 1)})
	if err != nil || len(n) != 1 || n[0].ID != "fresh" {
		t.Fatalf("cross-segment duplicate folded %v (err %v), want just \"fresh\"", n, err)
	}
	if s.Rows() != 4 || s.BatchCount() != 2 {
		t.Fatalf("rows %d batches %d, want 4 rows from 2 batches", s.Rows(), s.BatchCount())
	}
}

// TestStoreFoldCheckpointFailure: a failed checkpoint write must leave the
// store exactly where it was — watermark, batch set, and statistics. If the
// watermark advanced anyway, Compact would delete the segment with no durable
// checkpoint covering it and a later crash would silently lose acknowledged
// batches.
func TestStoreFoldCheckpointFailure(t *testing.T) {
	_, schema, mech := storeFixture(t)
	// A checkpoint path in a directory that does not exist yet: every write
	// fails until the directory appears, without touching permissions (which
	// root ignores).
	dir := filepath.Join(t.TempDir(), "missing")
	path := filepath.Join(dir, "store.json")
	s, err := OpenStore(path, schema, mech)
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{batchPayload(t, "b1", 3), batchPayload(t, "b2", 2)}
	if _, err := s.Fold(1, payloads); err == nil {
		t.Fatal("fold with an unwritable checkpoint must fail")
	}
	if s.AppliedSeq() != 0 || s.Rows() != 0 || s.BatchCount() != 0 || s.HasBatch("b1") {
		t.Fatalf("failed checkpoint mutated the store: seq %d rows %d batches %d",
			s.AppliedSeq(), s.Rows(), s.BatchCount())
	}

	// Once the write can land, the identical retry folds everything exactly
	// once.
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	n, err := s.Fold(1, payloads)
	if err != nil {
		t.Fatal(err)
	}
	if len(n) != 2 || s.Rows() != 5 || s.AppliedSeq() != 1 {
		t.Fatalf("retry fold = %d batches, %d rows, seq %d", len(n), s.Rows(), s.AppliedSeq())
	}
	reloaded, err := OpenStore(path, schema, mech)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Rows() != 5 || reloaded.AppliedSeq() != 1 {
		t.Fatalf("checkpoint after retry: rows %d seq %d", reloaded.Rows(), reloaded.AppliedSeq())
	}
}

func TestStoreRefusesMismatches(t *testing.T) {
	path, schema, mech := storeFixture(t)
	s, err := OpenStore(path, schema, mech)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fold(1, [][]byte{batchPayload(t, "b1", 1)}); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenStore(path, schema, "other-mechanism"); faults.Kind(err) != faults.ErrBadMeta {
		t.Fatalf("mechanism mismatch must be ErrBadMeta, got %v", err)
	}
	otherSchema, _ := relation.NewSchema(relation.Column{Name: "major", Kind: relation.Discrete})
	if _, err := OpenStore(path, otherSchema, mech); faults.Kind(err) != faults.ErrBadMeta {
		t.Fatalf("schema mismatch must be ErrBadMeta, got %v", err)
	}

	if err := os.WriteFile(path, []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(path, schema, mech); faults.Kind(err) != faults.ErrCorruptCheckpoint {
		t.Fatalf("version skew must be ErrCorruptCheckpoint, got %v", err)
	}
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(path, schema, mech); faults.Kind(err) != faults.ErrCorruptCheckpoint {
		t.Fatalf("garbage checkpoint must be ErrCorruptCheckpoint, got %v", err)
	}
}

func TestStoreRejectsCorruptPayload(t *testing.T) {
	path, schema, mech := storeFixture(t)
	s, err := OpenStore(path, schema, mech)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fold(1, [][]byte{[]byte("not a batch")}); faults.Kind(err) != faults.ErrCorruptCheckpoint {
		t.Fatalf("undecodable payload must be ErrCorruptCheckpoint, got %v", err)
	}
	if _, err := s.Fold(2, [][]byte{[]byte(`{"mechanism":"m","reports":[]}`)}); faults.Kind(err) != faults.ErrCorruptCheckpoint {
		t.Fatalf("empty batch id must be ErrCorruptCheckpoint, got %v", err)
	}
}
