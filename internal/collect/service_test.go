package collect

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"privateclean/internal/estimator"
	"privateclean/internal/faults"
	"privateclean/internal/privacy"
	"privateclean/internal/telemetry"
)

func collectMeta() *privacy.ViewMeta {
	return &privacy.ViewMeta{
		Discrete: map[string]privacy.DiscreteMeta{
			"major": {Name: "major", P: 0.25, Domain: []string{"CS", "EE", "ME"}},
		},
		Numeric: map[string]privacy.NumericMeta{
			"score": {Name: "score", B: 2, Delta: 20},
		},
	}
}

func newTestService(t *testing.T, dir string, mutate func(*Config)) *Service {
	t.Helper()
	cfg := Config{Dir: dir, Meta: collectMeta(), Tel: telemetry.Noop()}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// makeBatches privatizes rows client-side with a deterministic per-row RNG,
// so every test run (and every crash-recovery rerun) ships identical reports.
func makeBatches(t *testing.T, meta *privacy.ViewMeta, seed int64, nBatches, perBatch int) []Batch {
	t.Helper()
	mech := privacy.MechanismFingerprint(meta)
	majors := []string{"CS", "EE", "ME"}
	batches := make([]Batch, nBatches)
	row := 0
	for i := range batches {
		batches[i] = Batch{ID: fmt.Sprintf("batch-%03d", i), Mechanism: mech}
		for j := 0; j < perBatch; j++ {
			rep, err := privacy.PrivatizeRecord(privacy.StreamRand(seed, row), meta,
				map[string]string{"major": majors[row%len(majors)]},
				map[string]float64{"score": float64(50 + row%40)})
			if err != nil {
				t.Fatal(err)
			}
			batches[i].Reports = append(batches[i].Reports, rep)
			row++
		}
	}
	return batches
}

func do(t *testing.T, h http.Handler, method, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	var r io.Reader
	if body != nil {
		r = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, path, r)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func postBatch(t *testing.T, h http.Handler, b Batch) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return do(t, h, http.MethodPost, "/v1/report", body)
}

func mustPost(t *testing.T, h http.Handler, b Batch) {
	t.Helper()
	if rec := postBatch(t, h, b); rec.Code != http.StatusOK {
		t.Fatalf("POST %s = %d: %s", b.ID, rec.Code, rec.Body)
	}
}

func getStats(t *testing.T, h http.Handler) []byte {
	t.Helper()
	rec := do(t, h, http.MethodGet, "/v1/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/stats = %d: %s", rec.Code, rec.Body)
	}
	return rec.Body.Bytes()
}

func TestServiceAcceptAndStats(t *testing.T) {
	s := newTestService(t, t.TempDir(), nil)
	defer s.Shutdown(context.Background())
	h := s.Handler()
	batches := makeBatches(t, collectMeta(), 1, 4, 5)
	for _, b := range batches {
		mustPost(t, h, b)
	}
	var st estimator.Statistics
	if err := json.Unmarshal(getStats(t, h), &st); err != nil {
		t.Fatal(err)
	}
	if st.Rows != 20 {
		t.Fatalf("stats rows = %d, want 20", st.Rows)
	}
	if _, ok := st.Numeric["score"]; !ok {
		t.Fatal("stats missing score moments")
	}
	if len(st.Discrete["major"]) == 0 {
		t.Fatal("stats missing major marginals")
	}

	// The stats bytes must equal what a direct collector over the same
	// reports produces — the collected path and the batch path agree exactly.
	schema, err := SchemaFor(collectMeta())
	if err != nil {
		t.Fatal(err)
	}
	coll := estimator.NewCollector()
	for _, b := range batches {
		win, err := (&Store{schema: schema}).window(b)
		if err != nil {
			t.Fatal(err)
		}
		if err := coll.Add(win); err != nil {
			t.Fatal(err)
		}
	}
	want, err := json.MarshalIndent(coll.Statistics(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if got := getStats(t, h); !bytes.Equal(got, append(want, '\n')) {
		t.Fatalf("collected stats differ from direct-collector stats:\n%s\nvs\n%s", got, want)
	}
}

func TestServiceRejections(t *testing.T) {
	s := newTestService(t, t.TempDir(), func(c *Config) { c.MaxBatchReports = 2 })
	defer s.Shutdown(context.Background())
	h := s.Handler()
	mech := s.Mechanism()
	rep := privacy.Report{Discrete: map[string]string{"major": "CS"}}

	cases := []struct {
		name string
		body string
		code int
		errc string
	}{
		{"not json", `garbage`, 400, "bad_batch"},
		{"no id", `{"mechanism":"` + mech + `","reports":[{}]}`, 400, "bad_batch"},
		{"long id", `{"batch_id":"` + strings.Repeat("x", 300) + `","mechanism":"` + mech + `","reports":[{}]}`, 400, "bad_batch"},
		{"wrong mechanism", `{"batch_id":"b","mechanism":"nope","reports":[{}]}`, 422, "mechanism_mismatch"},
		{"empty batch", `{"batch_id":"b","mechanism":"` + mech + `","reports":[]}`, 400, "bad_batch"},
		{"unknown discrete", `{"batch_id":"b","mechanism":"` + mech + `","reports":[{"discrete":{"ssn":"x"}}]}`, 422, "bad_batch"},
		{"unknown numeric", `{"batch_id":"b","mechanism":"` + mech + `","reports":[{"numeric":{"salary":1}}]}`, 422, "bad_batch"},
		{"non-finite", `{"batch_id":"b","mechanism":"` + mech + `","reports":[{"numeric":{"score":1e999}}]}`, 400, "bad_batch"},
	}
	for _, tc := range cases {
		rec := do(t, h, http.MethodPost, "/v1/report", []byte(tc.body))
		if rec.Code != tc.code {
			t.Fatalf("%s: status %d, want %d (%s)", tc.name, rec.Code, tc.code, rec.Body)
		}
		var eb errorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
			t.Fatalf("%s: non-JSON error body %q", tc.name, rec.Body)
		}
		if eb.Error.Code != tc.errc {
			t.Fatalf("%s: code %q, want %q", tc.name, eb.Error.Code, tc.errc)
		}
	}

	// Over the report bound -> 413.
	big := Batch{ID: "big", Mechanism: mech, Reports: []privacy.Report{rep, rep, rep}}
	if rec := postBatch(t, h, big); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch = %d, want 413", rec.Code)
	}
	// Wrong methods.
	if rec := do(t, h, http.MethodGet, "/v1/report", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/report = %d, want 405", rec.Code)
	}
	if rec := do(t, h, http.MethodPost, "/v1/stats", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/stats = %d, want 405", rec.Code)
	}
}

// TestServiceCrossMechanismMismatch is the end-to-end regression for the
// fingerprint-collision bug: a collector pinned to GRR metadata must reject
// batches randomized under k-RR over the *identical* (p, domain) — before
// the mechanism name joined the fingerprint, those two channels pinned
// identically and mixed silently.
func TestServiceCrossMechanismMismatch(t *testing.T) {
	s := newTestService(t, t.TempDir(), nil) // pinned to GRR collectMeta()
	defer s.Shutdown(context.Background())
	h := s.Handler()

	krrMeta := collectMeta()
	dm := krrMeta.Discrete["major"]
	dm.Mechanism = privacy.MechKRR
	krrMeta.Discrete["major"] = dm
	if privacy.MechanismFingerprint(krrMeta) == s.Mechanism() {
		t.Fatal("grr and krr metas share a fingerprint: the collision regression is back")
	}

	batch := makeBatches(t, krrMeta, 1, 1, 3)[0]
	rec := postBatch(t, h, batch)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("krr batch against grr collector = %d, want 422 (%s)", rec.Code, rec.Body)
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Code != "mechanism_mismatch" {
		t.Fatalf("error code %q, want mechanism_mismatch", eb.Error.Code)
	}

	// And the same reports are accepted by a collector pinned to the krr
	// meta — the reject above is about channel identity, not about k-RR.
	s2 := newTestService(t, t.TempDir(), func(c *Config) { c.Meta = krrMeta })
	defer s2.Shutdown(context.Background())
	mustPost(t, s2.Handler(), batch)
}

// TestServiceRejectsUnknownMechanismMeta: a collector must refuse to start
// on metadata naming a mechanism the registry does not know — guessing
// inversion constants would corrupt every estimate it serves.
func TestServiceRejectsUnknownMechanismMeta(t *testing.T) {
	meta := collectMeta()
	dm := meta.Discrete["major"]
	dm.Mechanism = "exponential"
	meta.Discrete["major"] = dm
	_, err := New(Config{Dir: t.TempDir(), Meta: meta, Tel: telemetry.Noop()})
	if !errors.Is(err, privacy.ErrUnknownMechanism) {
		t.Fatalf("New with unknown mechanism: %v, want ErrUnknownMechanism", err)
	}
	if !errors.Is(err, faults.ErrBadMeta) {
		t.Fatalf("New with unknown mechanism: %v, want faults.ErrBadMeta", err)
	}
}

// TestServiceShed: with MaxInFlight=1 and one request parked inside the
// handler, the next is shed with 429 and a Retry-After hint.
func TestServiceShed(t *testing.T) {
	s := newTestService(t, t.TempDir(), func(c *Config) { c.MaxInFlight = 1 })
	defer s.Shutdown(context.Background())
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testHook = func() {
		once.Do(func() {
			close(entered)
			<-release
		})
	}
	h := s.Handler()
	batches := makeBatches(t, collectMeta(), 2, 2, 1)

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- postBatch(t, h, batches[0]) }()
	<-entered

	rec := postBatch(t, h, batches[1])
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429 (%s)", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	close(release)
	if rec := <-done; rec.Code != http.StatusOK {
		t.Fatalf("parked request = %d, want 200 (%s)", rec.Code, rec.Body)
	}
	// Capacity freed: the shed batch succeeds on retry.
	mustPost(t, h, batches[1])
}

// TestServiceDuplicates: a duplicate before compaction is re-appended but
// folds once; a duplicate after folding is acknowledged without an append.
func TestServiceDuplicates(t *testing.T) {
	s := newTestService(t, t.TempDir(), nil)
	defer s.Shutdown(context.Background())
	h := s.Handler()
	b := makeBatches(t, collectMeta(), 3, 1, 4)[0]

	mustPost(t, h, b)
	mustPost(t, h, b) // retry before any fold: lands in the WAL twice
	var st estimator.Statistics
	if err := json.Unmarshal(getStats(t, h), &st); err != nil {
		t.Fatal(err)
	}
	if st.Rows != 4 {
		t.Fatalf("rows = %d after a pre-fold duplicate, want 4", st.Rows)
	}

	rec := postBatch(t, h, b) // retry after folding
	if rec.Code != http.StatusOK {
		t.Fatalf("post-fold duplicate = %d (%s)", rec.Code, rec.Body)
	}
	var resp reportResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Duplicate {
		t.Fatal("post-fold duplicate must be acknowledged with duplicate=true")
	}
	if err := json.Unmarshal(getStats(t, h), &st); err != nil {
		t.Fatal(err)
	}
	if st.Rows != 4 {
		t.Fatalf("rows = %d after a post-fold duplicate, want 4", st.Rows)
	}
}

func TestServiceConfigErrors(t *testing.T) {
	if _, err := New(Config{Meta: collectMeta()}); err == nil {
		t.Fatal("missing Dir must fail")
	}
	if _, err := New(Config{Dir: t.TempDir()}); err == nil {
		t.Fatal("missing Meta must fail")
	}
	bad := collectMeta()
	d := bad.Discrete["major"]
	d.Domain = []string{"ZZ", "AA"} // unsorted
	bad.Discrete["major"] = d
	if _, err := New(Config{Dir: t.TempDir(), Meta: bad, Tel: telemetry.Noop()}); err == nil {
		t.Fatal("invalid meta must fail")
	}
}

// TestHTTPStatusMapping: transient durability failures (partial writes,
// backpressure) are retryable 503s, but corruption is permanent — a client
// retrying a 503 against a corrupt collector would just burn its retry
// budget, so ErrCorruptCheckpoint must map to a non-retryable 500.
func TestHTTPStatusMapping(t *testing.T) {
	cases := []struct {
		err    error
		status int
	}{
		{faults.Errorf(faults.ErrPartialWrite, "disk full"), http.StatusServiceUnavailable},
		{faults.Errorf(faults.ErrCorruptCheckpoint, "sealed segment bit rot"), http.StatusInternalServerError},
		{faults.Errorf(faults.ErrInternal, "bug"), http.StatusInternalServerError},
		{faults.Errorf(faults.ErrBadMeta, "mismatch"), http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		if status, _ := httpStatusFor(c.err); status != c.status {
			t.Errorf("httpStatusFor(%v) = %d, want %d", c.err, status, c.status)
		}
	}
}

// syncBuffer is a race-safe bytes.Buffer for capturing log output written
// from handler goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServiceRedactionBoundary is the satellite-6 proof: report values (the
// privatized cells) must never reach a telemetry sink — not the metrics
// exposition, not the logs, not the trace JSONL, not /v1/tracez or
// /v1/statusz — while the collector's own counters do.
func TestServiceRedactionBoundary(t *testing.T) {
	const sentinelDiscrete = "XQZ_SENTINEL_VALUE"
	const sentinelNumeric = "31337.25"

	logBuf := &syncBuffer{}
	red := telemetry.NewRedactor()
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	sink, err := telemetry.OpenTraceSink(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	tracer := telemetry.NewTracer(red)
	tracer.SetSink(sink)
	tel := &telemetry.Set{
		Log:     telemetry.NewLogger(logBuf, slog.LevelDebug, "text", red),
		Metrics: telemetry.NewRegistry(red),
		Trace:   tracer,
		Redact:  red,
	}
	s := newTestService(t, t.TempDir(), func(c *Config) { c.Tel = tel })
	defer s.Shutdown(context.Background())
	h := s.Handler()

	meta := collectMeta()
	b := Batch{ID: "redaction-probe", Mechanism: privacy.MechanismFingerprint(meta),
		// A forged trace_id carrying a cell value is shape-invalid and must
		// be dropped before it can ride into spans or fold links.
		TraceID: sentinelDiscrete,
		Reports: []privacy.Report{{
			Discrete: map[string]string{"major": sentinelDiscrete},
			Numeric:  map[string]float64{"score": 31337.25},
		}}}
	mustPost(t, h, b)
	_ = getStats(t, h) // force a fold so compaction paths log and trace too

	metrics := do(t, h, http.MethodGet, "/metrics", nil).Body.String()
	for _, want := range []string{
		"privateclean_collect_batches_accepted_total",
		"privateclean_collect_reports_accepted_total",
		"privateclean_collect_wal_fsync_seconds",
		"privateclean_collect_compactions_total",
		"privateclean_http_requests_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}
	tracez := do(t, h, http.MethodGet, "/v1/tracez", nil).Body.String()
	statusz := do(t, h, http.MethodGet, "/v1/statusz", nil).Body.String()
	if err := tel.Trace.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	traceData, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(traceData) == 0 {
		t.Error("trace sink is empty; the boundary check would be vacuous")
	}
	logs := logBuf.String()
	sinks := map[string]string{
		"metrics": metrics,
		"logs":    logs,
		"tracez":  tracez,
		"statusz": statusz,
		"trace":   string(traceData),
	}
	for name, content := range sinks {
		for _, leak := range []string{sentinelDiscrete, sentinelNumeric, "redaction-probe"} {
			if strings.Contains(content, leak) {
				t.Errorf("%s sink leaks %q", name, leak)
			}
		}
	}
	if logs == "" {
		t.Error("expected recovery/drain log lines at debug level")
	}
}

// TestServiceMetricsCount sanity-checks the counters' arithmetic.
func TestServiceMetricsCount(t *testing.T) {
	s := newTestService(t, t.TempDir(), nil)
	defer s.Shutdown(context.Background())
	h := s.Handler()
	batches := makeBatches(t, collectMeta(), 4, 3, 2)
	for _, b := range batches {
		mustPost(t, h, b)
	}
	metrics := do(t, h, http.MethodGet, "/metrics", nil).Body.String()
	if !strings.Contains(metrics, "privateclean_collect_batches_accepted_total 3") {
		t.Fatalf("batches counter wrong:\n%s", metrics)
	}
	if !strings.Contains(metrics, "privateclean_collect_reports_accepted_total 6") {
		t.Fatalf("reports counter wrong:\n%s", metrics)
	}
}
