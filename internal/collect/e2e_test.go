package collect

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"privateclean/internal/estimator"
	"privateclean/internal/faults"
)

// e2eBatches is the deterministic workload every crash scenario replays: the
// same seed produces the same client-side randomized reports, so two runs
// that both end up exactly-once must produce byte-identical statistics.
func e2eBatches(t *testing.T) []Batch {
	t.Helper()
	return makeBatches(t, collectMeta(), 42, 6, 8)
}

// baselineStats runs the uninterrupted path: one service, every batch posted
// once, stats read, clean shutdown.
func baselineStats(t *testing.T) []byte {
	t.Helper()
	s := newTestService(t, t.TempDir(), nil)
	h := s.Handler()
	for _, b := range e2eBatches(t) {
		mustPost(t, h, b)
	}
	stats := getStats(t, h)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	return stats
}

// walPath returns the active segment's path for a service rooted at dir.
func walPath(dir string, seq uint64) string {
	return filepath.Join(dir, WALDirName, segName(seq))
}

// TestE2ECrashMatrix is the acceptance property: kill -9 at every injected
// point, restart, have the client retry every batch (it cannot know which
// acks were durable), and the final statistics must be byte-identical to an
// uninterrupted run's.
func TestE2ECrashMatrix(t *testing.T) {
	baseline := baselineStats(t)
	batches := e2eBatches(t)
	const crashAfter = 3 // batches acknowledged before the crash

	// injure runs after the first service was kill -9'd (abort) and may
	// mangle the on-disk state the way the named crash would.
	scenarios := []struct {
		name   string
		injure func(t *testing.T, dir string, activeSeq uint64)
	}{
		{"kill9-clean-tail", func(t *testing.T, dir string, seq uint64) {}},
		{"torn-append-garbage-tail", func(t *testing.T, dir string, seq uint64) {
			appendBytes(t, walPath(dir, seq), []byte{0xde, 0xad, 0xbe})
		}},
		{"torn-append-truncated-record", func(t *testing.T, dir string, seq uint64) {
			path := walPath(dir, seq)
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			// Cut into the last record's payload: a write that half-arrived.
			if err := os.Truncate(path, info.Size()-5); err != nil {
				t.Fatal(err)
			}
		}},
		{"torn-append-bad-crc-tail", func(t *testing.T, dir string, seq uint64) {
			// A full-length tail record whose checksum does not match — the
			// header landed, the payload got mangled mid-write.
			payload := []byte(`{"batch_id":"never-acked","mechanism":"x","reports":[]}`)
			buf := make([]byte, recordHeaderSize+len(payload))
			binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
			binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload)^1)
			copy(buf[recordHeaderSize:], payload)
			appendBytes(t, walPath(dir, seq), buf)
		}},
		{"crash-mid-rotation", func(t *testing.T, dir string, seq uint64) {
			// The next segment file was created but nothing else happened.
			f, err := os.OpenFile(walPath(dir, seq+1), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			f.Close()
		}},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			dir := t.TempDir()
			s1 := newTestService(t, dir, nil)
			h1 := s1.Handler()
			for _, b := range batches[:crashAfter] {
				mustPost(t, h1, b)
			}
			seq := s1.wal.ActiveSeq()
			s1.abort() // kill -9
			sc.injure(t, dir, seq)

			s2 := newTestService(t, dir, nil) // recovery + replay
			h2 := s2.Handler()
			for _, b := range batches { // client retries everything
				mustPost(t, h2, b)
			}
			got := getStats(t, h2)
			if !bytes.Equal(got, baseline) {
				t.Fatalf("recovered statistics differ from uninterrupted run\ngot:\n%s\nwant:\n%s", got, baseline)
			}
			if err := s2.Shutdown(context.Background()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestE2ECrashMidCompaction covers the window between the checkpoint write
// and the segment delete: the segment reappears on restart but its seq is at
// or below the store watermark, so it is deleted without double-folding.
func TestE2ECrashMidCompaction(t *testing.T) {
	baseline := baselineStats(t)
	batches := e2eBatches(t)
	dir := t.TempDir()

	s1 := newTestService(t, dir, nil)
	h1 := s1.Handler()
	for _, b := range batches[:4] {
		mustPost(t, h1, b)
	}
	// Snapshot the active segment before compaction folds and deletes it.
	seq := s1.wal.ActiveSeq()
	segBytes, err := os.ReadFile(walPath(dir, seq))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Compact(); err != nil {
		t.Fatal(err)
	}
	if s1.store.AppliedSeq() < seq {
		t.Fatalf("compaction did not advance the watermark past %d", seq)
	}
	// Undo the delete: the crash happened after the checkpoint fsync'd but
	// before os.Remove ran.
	if err := os.WriteFile(walPath(dir, seq), segBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	s1.abort()

	s2 := newTestService(t, dir, nil)
	h2 := s2.Handler()
	for _, b := range batches {
		mustPost(t, h2, b)
	}
	got := getStats(t, h2)
	if !bytes.Equal(got, baseline) {
		t.Fatalf("post-compaction-crash statistics differ from uninterrupted run\ngot:\n%s\nwant:\n%s", got, baseline)
	}
	// The resurrected segment must be gone, not refolded.
	if _, err := os.Stat(walPath(dir, seq)); !os.IsNotExist(err) {
		t.Fatalf("stale segment %d survived recovery compaction (err %v)", seq, err)
	}
	if err := s2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestE2EDiskFullRetry: a full disk turns acks into 503 + Retry-After; once
// space frees, the client's retries land and nothing is double-counted.
func TestE2EDiskFullRetry(t *testing.T) {
	baseline := baselineStats(t)
	batches := e2eBatches(t)
	dir := t.TempDir()

	failing := false
	s := newTestService(t, dir, func(c *Config) {
		c.walTap = func(dst io.Writer) io.Writer {
			if failing {
				return &faults.FailingWriter{W: dst, FailAt: 4, Short: true, Err: newENOSPC()}
			}
			return dst
		}
	})
	h := s.Handler()
	for _, b := range batches[:2] {
		mustPost(t, h, b)
	}
	failing = true
	rec := postBatch(t, h, batches[2])
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("append into full disk = %d, want 503 (%s)", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 on append failure must carry Retry-After")
	}
	failing = false
	for _, b := range batches[2:] { // retry the failed one, then the rest
		mustPost(t, h, b)
	}
	got := getStats(t, h)
	if !bytes.Equal(got, baseline) {
		t.Fatalf("post-ENOSPC statistics differ from uninterrupted run\ngot:\n%s\nwant:\n%s", got, baseline)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestE2ERestartWithoutCrash: a clean shutdown and restart serves the same
// statistics from the checkpoint alone (the WAL is fully folded on drain).
func TestE2ERestartWithoutCrash(t *testing.T) {
	baseline := baselineStats(t)
	batches := e2eBatches(t)
	dir := t.TempDir()

	s1 := newTestService(t, dir, nil)
	h1 := s1.Handler()
	for _, b := range batches {
		mustPost(t, h1, b)
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2 := newTestService(t, dir, nil)
	got := getStats(t, s2.Handler())
	if !bytes.Equal(got, baseline) {
		t.Fatalf("restarted statistics differ from uninterrupted run\ngot:\n%s\nwant:\n%s", got, baseline)
	}
	if err := s2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestE2EStatsMatchDirectEstimates closes the loop with the estimator: the
// collected statistics must yield the same corrected count/sum/avg as a
// direct collector over the same reports (the batch-privatized path).
func TestE2EStatsMatchDirectEstimates(t *testing.T) {
	var collected estimator.Statistics
	if err := json.Unmarshal(baselineStats(t), &collected); err != nil {
		t.Fatal(err)
	}
	schema, err := SchemaFor(collectMeta())
	if err != nil {
		t.Fatal(err)
	}
	coll := estimator.NewCollector()
	for _, b := range e2eBatches(t) {
		win, err := (&Store{schema: schema}).window(b)
		if err != nil {
			t.Fatal(err)
		}
		if err := coll.Add(win); err != nil {
			t.Fatal(err)
		}
	}
	direct := coll.Statistics()

	meta := collectMeta()
	meta.Rows = collected.Rows
	est := &estimator.Estimator{Meta: meta}
	for _, v := range []string{"CS", "EE", "ME"} {
		cc, err := est.CountStats(&collected, estimator.Eq("major", v))
		if err != nil {
			t.Fatal(err)
		}
		dc, err := est.CountStats(direct, estimator.Eq("major", v))
		if err != nil {
			t.Fatal(err)
		}
		if cc.Value != dc.Value || cc.CI != dc.CI {
			t.Fatalf("count(major=%s): collected %+v, direct %+v", v, cc, dc)
		}
		cs, err := est.AvgStats(&collected, "score", estimator.Eq("major", v))
		if err != nil {
			t.Fatal(err)
		}
		ds, err := est.AvgStats(direct, "score", estimator.Eq("major", v))
		if err != nil {
			t.Fatal(err)
		}
		if cs.Value != ds.Value || cs.CI != ds.CI {
			t.Fatalf("avg(score | major=%s): collected %+v, direct %+v", v, cs, ds)
		}
	}
	ct, err := est.TotalSumStats(&collected, "score")
	if err != nil {
		t.Fatal(err)
	}
	dt, err := est.TotalSumStats(direct, "score")
	if err != nil {
		t.Fatal(err)
	}
	if ct.Value != dt.Value {
		t.Fatalf("total sum: collected %v, direct %v", ct.Value, dt.Value)
	}
}

func appendBytes(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// newENOSPC fabricates a "no space left on device"-shaped error for the
// disk-full scenario without needing a real full filesystem.
func newENOSPC() error {
	return &os.PathError{Op: "write", Path: "wal", Err: errENOSPC{}}
}

type errENOSPC struct{}

func (errENOSPC) Error() string { return "no space left on device" }
