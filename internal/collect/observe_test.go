package collect

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"privateclean/internal/telemetry"
)

// newTracedTel builds a telemetry set with a live tracer, which the Noop set
// used by most service tests deliberately lacks.
func newTracedTel() *telemetry.Set {
	red := telemetry.NewRedactor()
	return &telemetry.Set{
		Log:     telemetry.NopLogger(),
		Metrics: telemetry.NewRegistry(red),
		Trace:   telemetry.NewTracer(red),
		Redact:  red,
	}
}

// postTraced posts a batch with a traceparent header, returning the recorder.
func postTraced(t *testing.T, h http.Handler, b Batch, traceparent string) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/report", bytes.NewReader(body))
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// rootsNamed returns the tracer's retained root spans with the given name.
func rootsNamed(tel *telemetry.Set, name string) []*telemetry.Span {
	var out []*telemetry.Span
	for _, r := range tel.Trace.Roots() {
		if r.Name == name {
			out = append(out, r)
		}
	}
	return out
}

// TestServiceTracePropagation: a client traceparent on POST /v1/report is
// adopted by the collect_report span (same trace ID, client span as parent),
// echoed on the ack, and the WAL append runs as a child span of it.
func TestServiceTracePropagation(t *testing.T) {
	tel := newTracedTel()
	s := newTestService(t, t.TempDir(), func(c *Config) { c.Tel = tel })
	defer s.Shutdown(context.Background())
	h := s.Handler()

	clientTrace, clientSpan := telemetry.NewTraceID(), telemetry.NewSpanID()
	b := makeBatches(t, collectMeta(), 11, 1, 3)[0]
	rec := postTraced(t, h, b, telemetry.FormatTraceparent(clientTrace, clientSpan))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /v1/report = %d: %s", rec.Code, rec.Body)
	}

	echo := rec.Header().Get("traceparent")
	echoTrace, _, ok := telemetry.ParseTraceparent(echo)
	if !ok || echoTrace != clientTrace {
		t.Fatalf("ack traceparent %q does not continue client trace %s", echo, clientTrace)
	}

	spans := rootsNamed(tel, "collect_report")
	if len(spans) != 1 {
		t.Fatalf("collect_report spans = %d, want 1", len(spans))
	}
	sp := spans[0]
	if sp.TraceID != clientTrace || sp.ParentID != clientSpan {
		t.Fatalf("server span context (trace=%s parent=%s) does not adopt client context (%s, %s)",
			sp.TraceID, sp.ParentID, clientTrace, clientSpan)
	}
	var sawAppend bool
	for _, c := range sp.Children {
		if c.Name == "wal_append" && c.TraceID == clientTrace && c.ParentID == sp.SpanID {
			sawAppend = true
		}
	}
	if !sawAppend {
		t.Fatalf("no wal_append child under the collect_report span: %+v", sp.Children)
	}

	// A hostile header degrades to a fresh trace instead of injecting bytes.
	b2 := makeBatches(t, collectMeta(), 12, 1, 2)[0]
	b2.ID = "hostile-header-batch"
	rec = postTraced(t, h, b2, "00-<script>-deadbeefdeadbeef-01")
	if rec.Code != http.StatusOK {
		t.Fatalf("POST with hostile header = %d: %s", rec.Code, rec.Body)
	}
	for _, sp := range rootsNamed(tel, "collect_report") {
		if !telemetry.ValidTraceID(sp.TraceID) {
			t.Fatalf("span adopted an invalid trace ID %q", sp.TraceID)
		}
	}
}

// TestServiceFoldSpanLinks: every folded batch's trace ID appears in exactly
// one fold span's link set — including duplicates appended twice before the
// fold, and batches recovered after an unclean shutdown (the kill -9 path).
func TestServiceFoldSpanLinks(t *testing.T) {
	dir := t.TempDir()
	tel := newTracedTel()
	s := newTestService(t, dir, func(c *Config) { c.Tel = tel })
	h := s.Handler()

	batches := makeBatches(t, collectMeta(), 21, 3, 2)
	traces := map[string]string{} // batch ID -> trace ID
	for i := range batches {
		batches[i].TraceID = telemetry.NewTraceID()
		traces[batches[i].ID] = batches[i].TraceID
		mustPost(t, h, batches[i])
	}
	// A pre-fold duplicate lands in the WAL twice but must link once.
	mustPost(t, h, batches[0])

	// Unclean shutdown: nothing folded yet, so the links must come from the
	// restarted collector's recovery fold.
	s.abort()
	if len(rootsNamed(tel, "fold")) != 0 {
		t.Fatal("fold span recorded before any compaction")
	}

	tel2 := newTracedTel()
	s2 := newTestService(t, dir, func(c *Config) { c.Tel = tel2 })
	defer s2.Shutdown(context.Background())

	linkCount := map[string]int{}
	for _, sp := range rootsNamed(tel2, "fold") {
		for _, l := range sp.Links {
			linkCount[l]++
		}
	}
	for id, trace := range traces {
		if linkCount[trace] != 1 {
			t.Errorf("batch %s trace %s linked %d times, want exactly 1", id, trace, linkCount[trace])
		}
	}
	if len(linkCount) != len(traces) {
		t.Errorf("fold links cover %d traces, want %d: %v", len(linkCount), len(traces), linkCount)
	}

	// A post-fold re-fold adds no links: the batches already folded.
	if _, err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	again := map[string]int{}
	for _, sp := range rootsNamed(tel2, "fold") {
		for _, l := range sp.Links {
			again[l]++
		}
	}
	for trace, n := range again {
		if n != 1 {
			t.Errorf("trace %s linked %d times after re-compaction", trace, n)
		}
	}
}

// TestServiceStatusz: the pipeline-health summary distinguishes "never
// folded" from "just folded", and reports watermark, backlog, and freshness
// consistent with what actually happened.
func TestServiceStatusz(t *testing.T) {
	tel := newTracedTel()
	s := newTestService(t, t.TempDir(), func(c *Config) { c.Tel = tel })
	defer s.Shutdown(context.Background())
	h := s.Handler()

	getStatusz := func() statuszResponse {
		t.Helper()
		rec := do(t, h, http.MethodGet, "/v1/statusz", nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /v1/statusz = %d: %s", rec.Code, rec.Body)
		}
		var resp statuszResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("statusz body is not JSON: %v\n%s", err, rec.Body)
		}
		return resp
	}

	fresh := getStatusz()
	if fresh.Service != "collect" || fresh.Rows != 0 || fresh.Batches != 0 {
		t.Fatalf("fresh statusz: %+v", fresh)
	}
	if fresh.LastFoldUnix != 0 || fresh.LastFoldAgeSeconds != -1 {
		t.Fatalf("fresh statusz must report never-folded, got %+v", fresh)
	}
	if fresh.Mechanism != s.Mechanism() {
		t.Fatalf("statusz mechanism %q != pinned %q", fresh.Mechanism, s.Mechanism())
	}

	for _, b := range makeBatches(t, collectMeta(), 31, 2, 4) {
		mustPost(t, h, b)
	}
	_ = getStats(t, h) // compact-on-read folds everything

	after := getStatusz()
	if after.Rows != 8 || after.Batches != 2 {
		t.Fatalf("statusz rows/batches = %d/%d, want 8/2", after.Rows, after.Batches)
	}
	if after.SealedBacklog != 0 || after.SeqLag != 0 {
		t.Fatalf("statusz backlog after full compaction: %+v", after)
	}
	if after.AppliedSeq == 0 || after.ActiveSeq <= after.AppliedSeq {
		t.Fatalf("statusz watermark: applied=%d active=%d", after.AppliedSeq, after.ActiveSeq)
	}
	if after.FreshnessCount != 2 || after.FreshnessSumSeconds < 0 {
		t.Fatalf("statusz freshness count/sum = %d/%v, want 2 observations", after.FreshnessCount, after.FreshnessSumSeconds)
	}
	if after.PendingAcks != 0 {
		t.Fatalf("statusz pending acks = %d after folding everything", after.PendingAcks)
	}
	if after.LastFoldUnix == 0 || after.LastFoldAgeSeconds < 0 || after.UptimeSeconds <= 0 {
		t.Fatalf("statusz stamps: %+v", after)
	}

	// The freshness histogram is also on /metrics (acceptance: >= 1
	// observation after an end-to-end drain).
	metrics := do(t, h, http.MethodGet, "/metrics", nil).Body.String()
	if !strings.Contains(metrics, "privateclean_collect_freshness_seconds_count 2") {
		t.Fatalf("metrics missing freshness observations:\n%s", metrics)
	}

	if rec := do(t, h, http.MethodPost, "/v1/statusz", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/statusz = %d, want 405", rec.Code)
	}
}

// TestServiceTracez: completed traces are retrievable from the bounded ring.
func TestServiceTracez(t *testing.T) {
	tel := newTracedTel()
	s := newTestService(t, t.TempDir(), func(c *Config) { c.Tel = tel })
	defer s.Shutdown(context.Background())
	h := s.Handler()

	mustPost(t, h, makeBatches(t, collectMeta(), 41, 1, 2)[0])
	rec := do(t, h, http.MethodGet, "/v1/tracez", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/tracez = %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Traces []struct {
			Name  string `json:"name"`
			Trace string `json:"trace"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("tracez body: %v\n%s", err, rec.Body)
	}
	var saw bool
	for _, tr := range resp.Traces {
		if tr.Name == "collect_report" && telemetry.ValidTraceID(tr.Trace) {
			saw = true
		}
	}
	if !saw {
		t.Fatalf("tracez has no collect_report trace: %s", rec.Body)
	}
	if rec := do(t, h, http.MethodPost, "/v1/tracez", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/tracez = %d, want 405", rec.Code)
	}
}
