package collect

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"testing"

	"privateclean/internal/faults"
	"privateclean/internal/telemetry"
)

func testWAL(t *testing.T, dir string, opts Options) *WAL {
	t.Helper()
	if opts.Tel == nil {
		opts.Tel = telemetry.Noop()
	}
	w, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func mustAppend(t *testing.T, w *WAL, payload string) uint64 {
	t.Helper()
	seq, err := w.Append([]byte(payload))
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func TestWALAppendRoundtrip(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, dir, Options{})
	for i := 0; i < 5; i++ {
		mustAppend(t, w, fmt.Sprintf("record-%d", i))
	}
	if _, err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	sealed, err := w.Sealed()
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) != 1 {
		t.Fatalf("sealed segments = %d, want 1", len(sealed))
	}
	records, err := ReadSegment(sealed[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 5 || string(records[0]) != "record-0" || string(records[4]) != "record-4" {
		t.Fatalf("bad readback: %d records", len(records))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWALRecoverEmptySegment: an empty active segment (created but never
// appended to) recovers cleanly with zero records and zero truncation.
func TestWALRecoverEmptySegment(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, dir, Options{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w = testWAL(t, dir, Options{})
	defer w.Close()
	rec := w.Recovery()
	if rec.Segments != 1 || rec.Records != 0 || rec.TruncatedBytes != 0 {
		t.Fatalf("recovery = %+v, want 1 empty segment", rec)
	}
	// The empty segment must still be appendable.
	mustAppend(t, w, "after-recovery")
}

// TestWALRecoverSingleRecordSegment: exactly one record survives recovery.
func TestWALRecoverSingleRecordSegment(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, dir, Options{})
	mustAppend(t, w, "only")
	w.abort() // kill -9: no sync, no close bookkeeping
	w = testWAL(t, dir, Options{})
	defer w.Close()
	rec := w.Recovery()
	if rec.Records != 1 || rec.TruncatedBytes != 0 {
		t.Fatalf("recovery = %+v, want exactly one record, nothing truncated", rec)
	}
	if _, err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	sealed, _ := w.Sealed()
	records, err := ReadSegment(sealed[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || string(records[0]) != "only" {
		t.Fatalf("readback %q, want [only]", records)
	}
}

// TestWALRecoverTornHeader: a crash mid-header leaves fewer than 8 tail
// bytes; recovery truncates them and keeps the records before.
func TestWALRecoverTornHeader(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, dir, Options{})
	mustAppend(t, w, "keep-me")
	w.abort()
	path := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x01, 0x02, 0x03}) // 3 bytes of a would-be header
	f.Close()

	w = testWAL(t, dir, Options{})
	defer w.Close()
	rec := w.Recovery()
	if rec.Records != 1 || rec.TruncatedBytes != 3 {
		t.Fatalf("recovery = %+v, want 1 record and 3 truncated bytes", rec)
	}
}

// TestWALRecoverTornPayload: a header promising more payload than the file
// holds is truncated at the record boundary.
func TestWALRecoverTornPayload(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, dir, Options{})
	mustAppend(t, w, "keep-me")
	w.abort()
	path := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	hdr := make([]byte, recordHeaderSize)
	binary.LittleEndian.PutUint32(hdr, 100) // promises 100 bytes
	binary.LittleEndian.PutUint32(hdr[4:], 0)
	f.Write(hdr)
	f.Write([]byte("short")) // only 5 arrive
	f.Close()

	w = testWAL(t, dir, Options{})
	defer w.Close()
	rec := w.Recovery()
	if rec.Records != 1 || rec.TruncatedBytes != recordHeaderSize+5 {
		t.Fatalf("recovery = %+v, want 1 record and %d truncated bytes", rec, recordHeaderSize+5)
	}
}

// TestWALRecoverBadCRCTail: the tail record has a valid length and a full
// payload but a wrong checksum — it must be dropped, not replayed.
func TestWALRecoverBadCRCTail(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, dir, Options{})
	mustAppend(t, w, "keep-me")
	w.abort()
	path := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("bit-rotted")
	buf := make([]byte, recordHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload)^0xdeadbeef)
	copy(buf[recordHeaderSize:], payload)
	f.Write(buf)
	f.Close()

	w = testWAL(t, dir, Options{})
	defer w.Close()
	rec := w.Recovery()
	if rec.Records != 1 || rec.TruncatedBytes != int64(len(buf)) {
		t.Fatalf("recovery = %+v, want 1 record and %d truncated bytes", rec, len(buf))
	}
	// The truncation is durable: a third open sees a clean file.
	w.abort()
	w = testWAL(t, dir, Options{})
	defer w.Close()
	if rec := w.Recovery(); rec.Records != 1 || rec.TruncatedBytes != 0 {
		t.Fatalf("second recovery = %+v, want clean", rec)
	}
}

// TestWALSealedCorruptionRefuses: corruption in a sealed (non-active) segment
// is acknowledged data; Open must refuse with ErrCorruptCheckpoint rather
// than silently undercount.
func TestWALSealedCorruptionRefuses(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, dir, Options{})
	mustAppend(t, w, "sealed-record")
	if _, err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, "active-record")
	w.abort()

	// Flip a payload byte in the sealed segment.
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[recordHeaderSize] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Open(dir, Options{Tel: telemetry.Noop()})
	if faults.Kind(err) != faults.ErrCorruptCheckpoint {
		t.Fatalf("sealed corruption must refuse with ErrCorruptCheckpoint, got %v", err)
	}
}

// TestWALDiskFullRepair: an injected write failure mid-record is repaired by
// truncating to the last record boundary; the next append (disk space back)
// succeeds and recovery sees a clean log.
func TestWALDiskFullRepair(t *testing.T) {
	dir := t.TempDir()
	failing := true
	opts := Options{
		Tel: telemetry.Noop(),
		tapWriter: func(dst io.Writer) io.Writer {
			if failing {
				return &faults.FailingWriter{W: dst, FailAt: 4, Short: true}
			}
			return dst
		},
	}
	w := testWAL(t, dir, opts)
	failing = false
	mustAppend(t, w, "before-full")
	failing = true
	_, err := w.Append([]byte("lost-to-enospc"))
	if faults.Kind(err) != faults.ErrPartialWrite {
		t.Fatalf("append into full disk: got %v, want ErrPartialWrite", err)
	}
	failing = false
	mustAppend(t, w, "after-space-freed")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w = testWAL(t, dir, Options{})
	defer w.Close()
	rec := w.Recovery()
	if rec.Records != 2 || rec.TruncatedBytes != 0 {
		t.Fatalf("recovery = %+v, want 2 records and a clean tail", rec)
	}
	if _, err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	sealed, _ := w.Sealed()
	records, err := ReadSegment(sealed[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 || string(records[0]) != "before-full" || string(records[1]) != "after-space-freed" {
		t.Fatalf("readback = %q", records)
	}
}

// TestWALPoisonedAfterFailedRepair: when even the repair truncate cannot run
// (file handle gone), the WAL poisons itself and refuses all later appends.
func TestWALPoisonedAfterFsyncFailure(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, dir, Options{})
	mustAppend(t, w, "fine")
	// Close the fd out from under the WAL: the next append's write fails and
	// the repair fails too, so the WAL must poison.
	w.f.Close()
	if _, err := w.Append([]byte("doomed")); err == nil {
		t.Fatal("append on a dead fd must fail")
	}
	_, err := w.Append([]byte("also-doomed"))
	if err == nil {
		t.Fatal("poisoned WAL must refuse appends")
	}
	if faults.Kind(err) != faults.ErrPartialWrite {
		t.Fatalf("poisoned append = %v, want ErrPartialWrite", err)
	}
}

func TestWALRotateEmptyIsNoop(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, dir, Options{})
	defer w.Close()
	sealedNow, err := w.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if sealedNow {
		t.Fatal("rotating an empty segment must be a no-op")
	}
	if w.ActiveSeq() != 1 {
		t.Fatalf("seq advanced to %d on empty rotate", w.ActiveSeq())
	}
}

func TestWALSegmentRotationBySize(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, dir, Options{SegmentBytes: 64})
	defer w.Close()
	for i := 0; i < 10; i++ {
		mustAppend(t, w, fmt.Sprintf("padding-record-%02d-xxxxxxxxxxxxxxxx", i))
	}
	if w.ActiveSeq() < 2 {
		t.Fatalf("64-byte segments never rotated across 10 appends (seq %d)", w.ActiveSeq())
	}
	sealed, err := w.Sealed()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, seg := range sealed {
		records, err := ReadSegment(seg.Path)
		if err != nil {
			t.Fatal(err)
		}
		total += len(records)
	}
	records, _, tailErr := scanSegment(filepath.Join(dir, segName(w.ActiveSeq())))
	if tailErr != nil {
		t.Fatal(tailErr)
	}
	if total += len(records); total != 10 {
		t.Fatalf("records across segments = %d, want 10", total)
	}
}

func TestWALAppendBounds(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, dir, Options{})
	defer w.Close()
	if _, err := w.Append(nil); faults.Kind(err) != faults.ErrBadInput {
		t.Fatalf("empty payload: %v, want ErrBadInput", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"", SyncAlways}, {"interval", SyncInterval}, {"never", SyncNever}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); faults.Kind(err) != faults.ErrUsage {
		t.Fatalf("bad policy must be ErrUsage, got %v", err)
	}
	if SyncAlways.String() != "always" || SyncInterval.String() != "interval" || SyncNever.String() != "never" {
		t.Fatal("SyncPolicy.String round-trip broken")
	}
}

func TestWALInjectedErrorIsInjected(t *testing.T) {
	// Sanity: the injected fault surfaces via errors.Is so e2e tests can tell
	// harness failures from real ones.
	dir := t.TempDir()
	opts := Options{
		Tel:       telemetry.Noop(),
		tapWriter: func(dst io.Writer) io.Writer { return &faults.FailingWriter{W: dst, FailAt: 0} },
	}
	w := testWAL(t, dir, opts)
	defer w.Close()
	_, err := w.Append([]byte("x"))
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("want wrapped ErrInjected, got %v", err)
	}
}
