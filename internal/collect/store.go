package collect

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"privateclean/internal/atomicio"
	"privateclean/internal/estimator"
	"privateclean/internal/faults"
	"privateclean/internal/privacy"
	"privateclean/internal/relation"
)

// storeVersion guards the checkpoint schema.
const storeVersion = 1

// Batch is the unit of ingestion and of WAL logging: one client-submitted
// group of locally randomized reports under one batch ID. The canonical JSON
// rendering of this struct is exactly what a WAL record holds, so replay
// decodes what ingestion encoded.
type Batch struct {
	ID        string           `json:"batch_id"`
	Mechanism string           `json:"mechanism"`
	Reports   []privacy.Report `json:"reports"`
	// TraceID carries the client's trace context through the WAL so the
	// asynchronous compaction fold can link back to the trace that shipped
	// the batch. Optional (omitted when clients don't trace), and restricted
	// to the 32-hex trace-ID shape by ingestion — an arbitrary string here
	// would otherwise ride into telemetry sinks.
	TraceID string `json:"trace_id,omitempty"`
}

// checkpointFile is the at-rest form of the store: the folded sufficient
// statistics, the highest WAL segment folded into them, and the IDs of every
// folded batch. It is written atomically (temp + fsync + rename) after each
// segment folds, so the pair (statistics, watermark) moves together — a
// crash never observes statistics from segment N with a watermark of N-1 or
// vice versa.
type checkpointFile struct {
	Version    int                   `json:"version"`
	Mechanism  string                `json:"mechanism,omitempty"`
	AppliedSeq uint64                `json:"applied_seq"`
	Batches    []string              `json:"batches"`
	Stats      *estimator.Statistics `json:"stats"`
}

// Store accumulates sufficient statistics from WAL segments with
// exactly-once accounting. Fold(seq, ...) is idempotent two ways: a segment
// at or below the applied watermark is skipped wholesale (the crash window
// between checkpoint write and segment delete), and a batch ID that already
// folded is skipped individually (the same batch logged in two segments by a
// client retry). The set of folded IDs grows with the number of batches;
// that is the price of exactly-once without client cooperation.
type Store struct {
	path      string
	schema    relation.Schema
	mechanism string

	mu      sync.Mutex
	applied uint64
	batches map[string]struct{}
	coll    *estimator.Collector
}

// OpenStore loads (or initializes) the store checkpoint at path. schema is
// the collection schema derived from the mechanism metadata; mechanism its
// fingerprint. An existing checkpoint must match both — folding reports from
// a different channel or shape into old statistics corrupts them silently,
// so a mismatch refuses loudly instead.
func OpenStore(path string, schema relation.Schema, mechanism string) (*Store, error) {
	s := &Store{path: path, schema: schema, mechanism: mechanism, batches: make(map[string]struct{})}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		coll, cerr := estimator.NewCollectorFrom(nil)
		if cerr != nil {
			return nil, cerr
		}
		s.coll = coll
		return s, nil
	}
	if err != nil {
		return nil, faults.Wrap(faults.ErrBadInput, fmt.Errorf("collect: store checkpoint: %w", err))
	}
	var ck checkpointFile
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, faults.Wrap(faults.ErrCorruptCheckpoint, fmt.Errorf("collect: store checkpoint %s: %w", path, err))
	}
	if ck.Version != storeVersion {
		return nil, faults.Errorf(faults.ErrCorruptCheckpoint, "collect: store checkpoint version %d, want %d", ck.Version, storeVersion)
	}
	if ck.Mechanism != "" && ck.Mechanism != mechanism {
		return nil, faults.Errorf(faults.ErrBadMeta, "collect: store was collected under a different mechanism (fingerprint mismatch)")
	}
	if ck.Stats != nil && len(ck.Stats.Columns) > 0 {
		ckSchema, err := relation.NewSchema(ck.Stats.Columns...)
		if err != nil {
			return nil, faults.Wrap(faults.ErrCorruptCheckpoint, err)
		}
		if ckSchema.String() != schema.String() {
			return nil, faults.Errorf(faults.ErrBadMeta, "collect: store schema %q does not match mechanism schema %q", ckSchema, schema)
		}
	}
	coll, err := estimator.NewCollectorFrom(ck.Stats)
	if err != nil {
		return nil, err
	}
	s.applied = ck.AppliedSeq
	s.coll = coll
	for _, id := range ck.Batches {
		s.batches[id] = struct{}{}
	}
	return s, nil
}

// AppliedSeq returns the highest WAL segment folded into the statistics.
func (s *Store) AppliedSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// HasBatch reports whether a batch ID has already been folded. Ingestion
// uses it to short-circuit duplicates cheaply; it is advisory only — the
// fold path re-checks under its own lock.
func (s *Store) HasBatch(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.batches[id]
	return ok
}

// decodeBatch decodes one WAL payload. The payload passed a CRC check, so a
// decode failure is not line noise — it is a version skew or a bug, and it
// poisons the segment as corrupt.
func decodeBatch(payload []byte) (Batch, error) {
	var b Batch
	if err := json.Unmarshal(payload, &b); err != nil {
		return Batch{}, faults.Wrap(faults.ErrCorruptCheckpoint, fmt.Errorf("collect: wal record: %w", err))
	}
	if b.ID == "" {
		return Batch{}, faults.Errorf(faults.ErrCorruptCheckpoint, "collect: wal record with empty batch id")
	}
	return b, nil
}

// window builds the relation window one batch folds as: one row per report,
// absent attributes as missing (relation.Null / NaN), under the collection
// schema so every window agrees with the collector.
func (s *Store) window(b Batch) (*relation.Relation, error) {
	builder := relation.NewBuilder(s.schema)
	for _, rep := range b.Reports {
		builder.Append(rep.Numeric, rep.Discrete)
	}
	win, err := builder.Relation()
	if err != nil {
		return nil, faults.Wrap(faults.ErrCorruptCheckpoint, fmt.Errorf("collect: batch %q: %w", b.ID, err))
	}
	return win, nil
}

// FoldedBatch identifies one batch a Fold call newly applied: its ID and the
// trace ID it carried (empty when the client did not trace). The compactor
// uses these to link its fold span to the shipping traces and to observe the
// ack-to-commit freshness of each batch.
type FoldedBatch struct {
	ID      string
	TraceID string
}

// Fold folds one sealed segment's payloads into the statistics and advances
// the watermark to seq, writing the checkpoint atomically before returning.
// Payloads whose batch ID already folded are skipped. After a nil return the
// segment file is safe to delete; if the process dies first, the next Fold
// call (or Open) sees seq <= AppliedSeq and skips it — exactly-once either
// way. The returned slice holds the newly folded batches in segment order.
//
// The fold is staged: payloads accumulate into a clone of the statistics,
// and the in-memory watermark, batch set, and collector swap over only after
// the checkpoint rename lands. On any error nothing moves — Compact cannot
// watermark-delete a segment no durable checkpoint covers, and retrying the
// same Fold neither loses nor double-counts a batch.
func (s *Store) Fold(seq uint64, payloads [][]byte) (folded []FoldedBatch, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq <= s.applied {
		return nil, nil
	}
	staged, err := cloneCollector(s.coll)
	if err != nil {
		return nil, err
	}
	newIDs := make(map[string]struct{})
	for _, payload := range payloads {
		b, err := decodeBatch(payload)
		if err != nil {
			return nil, err
		}
		if _, ok := s.batches[b.ID]; ok {
			continue
		}
		if _, ok := newIDs[b.ID]; ok {
			continue
		}
		win, err := s.window(b)
		if err != nil {
			return nil, err
		}
		if err := staged.Add(win); err != nil {
			return nil, err
		}
		newIDs[b.ID] = struct{}{}
		folded = append(folded, FoldedBatch{ID: b.ID, TraceID: b.TraceID})
	}
	ids := make([]string, 0, len(s.batches)+len(newIDs))
	for id := range s.batches {
		ids = append(ids, id)
	}
	for id := range newIDs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	ck := checkpointFile{
		Version:    storeVersion,
		Mechanism:  s.mechanism,
		AppliedSeq: seq,
		Batches:    ids,
		Stats:      staged.Statistics(),
	}
	if err := atomicio.WriteJSON(s.path, ck); err != nil {
		return nil, err
	}
	s.coll = staged
	s.applied = seq
	for id := range newIDs {
		s.batches[id] = struct{}{}
	}
	return folded, nil
}

// cloneCollector deep-copies a collector via its JSON form — the same
// round-trip a checkpoint reload takes, so the clone accumulates exactly
// like the original.
func cloneCollector(c *estimator.Collector) (*estimator.Collector, error) {
	st := c.Statistics()
	if len(st.Columns) == 0 {
		return estimator.NewCollectorFrom(nil)
	}
	data, err := json.Marshal(st)
	if err != nil {
		return nil, faults.Wrap(faults.ErrInternal, err)
	}
	var copied estimator.Statistics
	if err := json.Unmarshal(data, &copied); err != nil {
		return nil, faults.Wrap(faults.ErrInternal, err)
	}
	return estimator.NewCollectorFrom(&copied)
}

// MarshalStats renders the current statistics as JSON under the store lock,
// in exactly the format `privateclean stats` writes, so the bytes can be
// saved to a file and fed to `query -stats` / `serve -stats` directly.
func (s *Store) MarshalStats() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := json.MarshalIndent(s.coll.Statistics(), "", "  ")
	if err != nil {
		return nil, faults.Wrap(faults.ErrInternal, err)
	}
	return append(data, '\n'), nil
}

// Rows returns the number of folded report rows.
func (s *Store) Rows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.coll.Statistics().Rows
}

// BatchCount returns the number of distinct folded batches.
func (s *Store) BatchCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.batches)
}
