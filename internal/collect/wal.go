// Package collect is the crash-safe LDP ingestion service: clients randomize
// records locally (privacy.PrivatizeRecord) and POST batches of reports; the
// collector appends every accepted batch to a checksummed write-ahead log
// before acknowledging it, and an asynchronous compactor folds sealed WAL
// segments into the sufficient-statistics store that `query -stats` and
// `serve -stats` consume.
//
// Durability contract: once a batch is acknowledged with 200 under the
// "always" fsync policy, it survives kill -9 and power loss — records are
// fsynced before the ack, the WAL directory is fsynced when a segment is
// created (so the directory entry cannot vanish out from under synced
// records), and restart replays the WAL and folds every record exactly once
// (batch IDs deduplicate replays). A torn tail on the
// active segment (the record being appended when the process died) is
// truncated on recovery: that record was never acknowledged, so dropping it
// loses nothing. Corruption anywhere else is refused loudly rather than
// silently skipped, because a sealed segment's records were all acknowledged.
package collect

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"privateclean/internal/faults"
	"privateclean/internal/telemetry"
)

// Record layout: a fixed header of uint32 little-endian payload length and
// uint32 little-endian CRC32 (IEEE) of the payload, then the payload bytes.
const recordHeaderSize = 8

// maxRecordBytes bounds one record; a length beyond it is treated as header
// corruption, not an allocation request.
const maxRecordBytes = 64 << 20

// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes is
// zero.
const DefaultSegmentBytes = 4 << 20

// segPrefix/segSuffix shape segment file names: wal-<16-digit seq>.log.
const (
	segPrefix = "wal-"
	segSuffix = ".log"
)

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append, before the caller can
	// acknowledge. The only policy under which a 200 implies durability.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most every Options.SyncEvery (and on rotation,
	// drain, and close). A crash can lose the acknowledged tail of one
	// interval.
	SyncInterval
	// SyncNever leaves flushing to the OS. For tests and throwaway runs.
	SyncNever
)

// ParseSyncPolicy reads a -fsync flag value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always", "":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, faults.Errorf(faults.ErrUsage, "collect: unknown fsync policy %q (want always, interval, or never)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return "unknown"
}

// Options configures a WAL.
type Options struct {
	// SegmentBytes rotates the active segment once it holds at least this
	// many bytes (default DefaultSegmentBytes).
	SegmentBytes int64
	// Policy selects the fsync policy (default SyncAlways).
	Policy SyncPolicy
	// SyncEvery is the SyncInterval cadence (default 100ms).
	SyncEvery time.Duration
	// Tel is the telemetry set (default telemetry.Default()).
	Tel *telemetry.Set

	// tapWriter, when set by a test, wraps the active segment's writer so
	// write faults (disk full, short writes) can be injected at exact byte
	// offsets.
	tapWriter func(io.Writer) io.Writer
}

// SegmentInfo identifies one on-disk WAL segment.
type SegmentInfo struct {
	Seq  uint64
	Path string
}

// RecoveryStats reports what Open found and repaired.
type RecoveryStats struct {
	// Segments is the number of segment files present, Records the total
	// records recovered across them.
	Segments int
	Records  int
	// TruncatedBytes is the size of the torn tail dropped from the active
	// segment (zero on a clean shutdown).
	TruncatedBytes int64
}

// WAL is a length-prefixed, CRC-checksummed write-ahead log over numbered
// segment files. Appends go to the single active (highest-seq) segment;
// Rotate seals it; sealed segments are immutable until the compactor deletes
// them. Safe for concurrent use.
type WAL struct {
	dir  string
	opts Options
	tel  *telemetry.Set

	mu       sync.Mutex
	f        *os.File
	seq      uint64 // active segment sequence number
	size     int64  // bytes of valid records in the active segment
	lastSync time.Time
	closed   bool
	poisoned error // set when an append repair failed; all appends fail after
	recov    RecoveryStats
}

// segName renders the file name of segment seq.
func segName(seq uint64) string {
	return fmt.Sprintf("%s%016d%s", segPrefix, seq, segSuffix)
}

// parseSegName inverts segName.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
	if err != nil || seq == 0 {
		return 0, false
	}
	return seq, true
}

// listSegments returns the directory's segment files in sequence order.
func listSegments(dir string) ([]SegmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, faults.Wrap(faults.ErrBadInput, fmt.Errorf("collect: wal dir: %w", err))
	}
	var segs []SegmentInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSegName(e.Name()); ok {
			segs = append(segs, SegmentInfo{Seq: seq, Path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Seq < segs[j].Seq })
	for i := 1; i < len(segs); i++ {
		if segs[i].Seq == segs[i-1].Seq {
			return nil, faults.Errorf(faults.ErrCorruptCheckpoint, "collect: duplicate wal segment seq %d", segs[i].Seq)
		}
	}
	return segs, nil
}

// scanSegment walks a segment file, returning the payloads of every valid
// record, the byte offset where valid data ends, and a non-nil tail error
// when the file does not end cleanly at a record boundary (torn header,
// short payload, bad CRC, or absurd length).
func scanSegment(path string) (records [][]byte, validLen int64, tailErr error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	off := int64(0)
	for off < int64(len(data)) {
		if int64(len(data))-off < recordHeaderSize {
			return records, off, fmt.Errorf("torn header at offset %d", off)
		}
		length := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if length == 0 || length > maxRecordBytes {
			return records, off, fmt.Errorf("implausible record length %d at offset %d", length, off)
		}
		end := off + recordHeaderSize + int64(length)
		if end > int64(len(data)) {
			return records, off, fmt.Errorf("torn payload at offset %d", off)
		}
		payload := data[off+recordHeaderSize : end]
		if crc32.ChecksumIEEE(payload) != sum {
			return records, off, fmt.Errorf("crc mismatch at offset %d", off)
		}
		records = append(records, payload)
		off = end
	}
	return records, off, nil
}

// ReadSegment reads a sealed segment strictly: any invalid byte is
// corruption (every record in a sealed segment was acknowledged, so nothing
// in it is allowed to be torn).
func ReadSegment(path string) ([][]byte, error) {
	records, _, tailErr := scanSegment(path)
	if tailErr != nil {
		return nil, faults.Wrap(faults.ErrCorruptCheckpoint,
			fmt.Errorf("collect: sealed wal segment %s: %w", filepath.Base(path), tailErr))
	}
	return records, nil
}

// Open recovers the WAL in dir (creating it if absent). Sealed segments must
// be fully valid; the active (last) segment is truncated at the first
// invalid offset — a torn header, short payload, or checksum failure. Under
// the append protocol (records written sequentially, failed appends repaired
// by truncation to a record boundary before the next write) everything past
// that offset belongs to the one append that never completed, and it was
// never acknowledged, so dropping it loses nothing. Corruption in a sealed
// segment refuses to start with ErrCorruptCheckpoint: its records were all
// acknowledged, and silent repair would undercount them.
func Open(dir string, opts Options) (*WAL, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 100 * time.Millisecond
	}
	tel := opts.Tel
	if tel == nil {
		tel = telemetry.Default()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, faults.Wrap(faults.ErrPartialWrite, fmt.Errorf("collect: wal dir: %w", err))
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	w := &WAL{dir: dir, opts: opts, tel: tel, seq: 1, lastSync: time.Now()}
	w.recov.Segments = len(segs)
	for i, seg := range segs {
		records, validLen, tailErr := scanSegment(seg.Path)
		w.recov.Records += len(records)
		if tailErr == nil {
			continue
		}
		if i != len(segs)-1 {
			return nil, faults.Wrap(faults.ErrCorruptCheckpoint,
				fmt.Errorf("collect: sealed wal segment %s: %w", filepath.Base(seg.Path), tailErr))
		}
		// Active segment: drop the torn tail. Anything after the first
		// invalid offset is unacknowledged by the append protocol.
		info, err := os.Stat(seg.Path)
		if err != nil {
			return nil, faults.Wrap(faults.ErrBadInput, err)
		}
		w.recov.TruncatedBytes = info.Size() - validLen
		if err := truncateTo(seg.Path, validLen); err != nil {
			return nil, err
		}
		tel.Log.Warn("wal recovered torn tail", "op", "wal_recover",
			"segment", int(seg.Seq), "truncated_bytes", w.recov.TruncatedBytes)
	}
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		w.seq = last.Seq
		f, err := os.OpenFile(last.Path, os.O_RDWR, 0)
		if err != nil {
			return nil, faults.Wrap(faults.ErrBadInput, err)
		}
		size, err := f.Seek(0, io.SeekEnd)
		if err != nil {
			f.Close()
			return nil, faults.Wrap(faults.ErrBadInput, err)
		}
		w.f, w.size = f, size
	} else {
		if err := w.openSegmentLocked(); err != nil {
			return nil, err
		}
	}
	tel.Metrics.Counter("privateclean_collect_wal_truncated_bytes_total",
		"Torn-tail bytes dropped during WAL recovery.").Add(float64(w.recov.TruncatedBytes))
	return w, nil
}

// truncateTo truncates path to n bytes and syncs the result.
func truncateTo(path string, n int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return faults.Wrap(faults.ErrPartialWrite, err)
	}
	defer f.Close()
	if err := f.Truncate(n); err != nil {
		return faults.Wrap(faults.ErrPartialWrite, err)
	}
	if err := f.Sync(); err != nil {
		return faults.Wrap(faults.ErrPartialWrite, err)
	}
	return nil
}

// Recovery returns what Open found and repaired.
func (w *WAL) Recovery() RecoveryStats { return w.recov }

// openSegmentLocked creates the active segment file for w.seq and fsyncs the
// WAL directory so the new directory entry is itself durable — without that,
// a power loss after record fsyncs could drop the whole segment by losing its
// name. Callers hold w.mu (or are inside Open before the WAL escapes).
func (w *WAL) openSegmentLocked() error {
	f, err := os.OpenFile(filepath.Join(w.dir, segName(w.seq)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return faults.Wrap(faults.ErrPartialWrite, fmt.Errorf("collect: wal segment: %w", err))
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return faults.Wrap(faults.ErrPartialWrite, fmt.Errorf("collect: wal dir sync: %w", err))
	}
	w.f, w.size = f, 0
	return nil
}

// syncDir fsyncs a directory, making its entries (file creations and
// renames) durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Append durably logs one payload and returns the sequence number of the
// segment holding it. Under SyncAlways the record is on stable storage when
// Append returns; acknowledge the client only after. A failed write is
// repaired by truncating back to the last valid record; if even the repair
// fails the WAL is poisoned and every later Append returns the poisoning
// error, because the on-disk tail state is unknown.
func (w *WAL) Append(payload []byte) (uint64, error) {
	if len(payload) == 0 || len(payload) > maxRecordBytes {
		return 0, faults.Errorf(faults.ErrBadInput, "collect: record payload of %d bytes out of (0, %d]", len(payload), maxRecordBytes)
	}
	start := time.Now()
	defer func() {
		w.tel.Metrics.Histogram("privateclean_collect_wal_append_seconds",
			"Wall time of one WAL append, including any fsync the policy demands.",
			telemetry.DurationBuckets).Observe(time.Since(start).Seconds())
	}()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, faults.Errorf(faults.ErrInternal, "collect: append on closed wal")
	}
	if w.poisoned != nil {
		return 0, w.poisoned
	}
	if w.size >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	buf := make([]byte, recordHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	copy(buf[recordHeaderSize:], payload)

	var dst io.Writer = w.f
	if w.opts.tapWriter != nil {
		dst = w.opts.tapWriter(w.f)
	}
	n, err := dst.Write(buf)
	if err != nil || n != len(buf) {
		if err == nil {
			err = io.ErrShortWrite
		}
		// Repair: bring the file back to the last record boundary so the
		// torn bytes cannot be mistaken for a record later.
		if rerr := w.repairLocked(); rerr != nil {
			w.poisoned = rerr
			return 0, rerr
		}
		return 0, faults.Wrap(faults.ErrPartialWrite, fmt.Errorf("collect: wal append: %w", err))
	}
	w.size += int64(n)
	w.tel.Metrics.Counter("privateclean_collect_wal_appended_bytes_total",
		"Bytes appended to the write-ahead log.").Add(float64(n))
	switch w.opts.Policy {
	case SyncAlways:
		if err := w.syncLocked(); err != nil {
			// An fsync of unknown effect leaves the durable tail unknown;
			// poison rather than risk acknowledging lost data.
			w.poisoned = err
			return 0, err
		}
	case SyncInterval:
		if time.Since(w.lastSync) >= w.opts.SyncEvery {
			if err := w.syncLocked(); err != nil {
				w.poisoned = err
				return 0, err
			}
		}
	}
	return w.seq, nil
}

// repairLocked truncates the active segment back to w.size (the last record
// boundary) after a failed append.
func (w *WAL) repairLocked() error {
	if err := w.f.Truncate(w.size); err != nil {
		return faults.Wrap(faults.ErrPartialWrite, fmt.Errorf("collect: wal repair: %w", err))
	}
	if _, err := w.f.Seek(w.size, io.SeekStart); err != nil {
		return faults.Wrap(faults.ErrPartialWrite, fmt.Errorf("collect: wal repair: %w", err))
	}
	if err := w.f.Sync(); err != nil {
		return faults.Wrap(faults.ErrPartialWrite, fmt.Errorf("collect: wal repair: %w", err))
	}
	return nil
}

// syncLocked fsyncs the active segment, feeding the fsync-latency histogram.
func (w *WAL) syncLocked() error {
	start := time.Now()
	err := w.f.Sync()
	w.tel.Metrics.Histogram("privateclean_collect_wal_fsync_seconds",
		"Wall time of WAL fsync calls.", telemetry.DurationBuckets).Observe(time.Since(start).Seconds())
	if err != nil {
		return faults.Wrap(faults.ErrPartialWrite, fmt.Errorf("collect: wal fsync: %w", err))
	}
	w.lastSync = time.Now()
	return nil
}

// Sync forces the active segment to stable storage (used on drain under the
// interval/never policies).
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.poisoned != nil {
		return w.poisoned
	}
	return w.syncLocked()
}

// Rotate seals the active segment (sync + close) and opens the next one,
// reporting whether a seal happened. An empty active segment is left in
// place — sealing it would create empty files for the compactor to chew.
func (w *WAL) Rotate() (bool, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return false, faults.Errorf(faults.ErrInternal, "collect: rotate on closed wal")
	}
	if w.poisoned != nil {
		return false, w.poisoned
	}
	if w.size == 0 {
		return false, nil
	}
	return true, w.rotateLocked()
}

func (w *WAL) rotateLocked() error {
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return faults.Wrap(faults.ErrPartialWrite, fmt.Errorf("collect: wal rotate: %w", err))
	}
	w.seq++
	return w.openSegmentLocked()
}

// Sealed lists the immutable (non-active) segments in sequence order.
func (w *WAL) Sealed() ([]SegmentInfo, error) {
	w.mu.Lock()
	active := w.seq
	w.mu.Unlock()
	segs, err := listSegments(w.dir)
	if err != nil {
		return nil, err
	}
	sealed := segs[:0]
	for _, s := range segs {
		if s.Seq < active {
			sealed = append(sealed, s)
		}
	}
	return sealed, nil
}

// ActiveSeq returns the active segment's sequence number.
func (w *WAL) ActiveSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// ActiveSize returns the active segment's valid byte length.
func (w *WAL) ActiveSize() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// DiskBytes returns the total on-disk size of every WAL segment, and
// SegmentCount the number of segment files — the raw material for the
// wal_disk_bytes and wal_segments gauges. Both tolerate races with the
// compactor deleting segments (a vanished file counts as zero).
func (w *WAL) DiskBytes() int64 {
	segs, err := listSegments(w.dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, s := range segs {
		if info, err := os.Stat(s.Path); err == nil {
			total += info.Size()
		}
	}
	return total
}

// SegmentCount returns the number of on-disk WAL segment files.
func (w *WAL) SegmentCount() int {
	segs, err := listSegments(w.dir)
	if err != nil {
		return 0
	}
	return len(segs)
}

// Close syncs and closes the active segment. The WAL is unusable after.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.poisoned == nil {
		if err := w.syncLocked(); err != nil {
			w.f.Close()
			return err
		}
	}
	return w.f.Close()
}

// abort closes the segment file handle without syncing — the in-process
// stand-in for kill -9 in tests. The WAL takes no further appends.
func (w *WAL) abort() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.closed = true
	w.f.Close()
}
