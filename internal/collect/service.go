package collect

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"privateclean/internal/faults"
	"privateclean/internal/privacy"
	"privateclean/internal/relation"
	"privateclean/internal/telemetry"
)

// DefaultMaxInFlight bounds concurrently executing /v1/report requests when
// Config.MaxInFlight is zero.
const DefaultMaxInFlight = 64

// DefaultMaxBatchReports bounds one batch when Config.MaxBatchReports is
// zero.
const DefaultMaxBatchReports = 4096

// maxBatchBytes caps a /v1/report body.
const maxBatchBytes = 8 << 20

// maxBatchIDLen bounds a batch ID; IDs are client-chosen idempotency keys,
// not storage.
const maxBatchIDLen = 256

// StoreFileName is the checkpoint file inside the collection directory;
// WALDirName holds the segments.
const (
	StoreFileName = "store.json"
	WALDirName    = "wal"
)

// Config assembles a Service. Dir and Meta are required.
type Config struct {
	// Dir is the collection directory: WAL segments under Dir/wal, the
	// statistics checkpoint at Dir/store.json.
	Dir string
	// Meta is the mechanism metadata every client randomized under. Its
	// fingerprint (privacy.MechanismFingerprint) pins the collection: a
	// batch declaring a different fingerprint is rejected.
	Meta *privacy.ViewMeta
	// Fsync selects WAL durability (default SyncAlways); SyncEvery the
	// interval-policy cadence.
	Fsync     SyncPolicy
	SyncEvery time.Duration
	// SegmentBytes is the WAL rotation threshold (default
	// DefaultSegmentBytes).
	SegmentBytes int64
	// MaxInFlight bounds concurrently admitted batches; excess requests are
	// shed with 429 (default DefaultMaxInFlight).
	MaxInFlight int
	// MaxBatchReports bounds one batch (default DefaultMaxBatchReports).
	MaxBatchReports int
	// CompactEvery is the background compaction cadence. Zero or negative
	// disables the background compactor; compaction then happens only at
	// startup, on /v1/stats reads, on drain, and via explicit Compact calls
	// (tests use this for determinism).
	CompactEvery time.Duration
	// Tel is the telemetry set (default telemetry.Default()).
	Tel *telemetry.Set

	// walTap forwards to Options.tapWriter for write-fault injection.
	walTap func(io.Writer) io.Writer
}

// Service is the LDP collection endpoint:
//
//	POST /v1/report  {"batch_id", "mechanism", "reports": [...]} -> ack after WAL append
//	GET  /v1/stats   current folded statistics (the `pc stats` JSON format)
//	GET  /healthz    liveness
//	GET  /metrics    Prometheus text exposition
type Service struct {
	meta     *privacy.ViewMeta
	mech     string
	schema   relation.Schema
	wal      *WAL
	store    *Store
	tel      *telemetry.Set
	sem      chan struct{}
	maxBatch int

	// cmu serializes compaction (startup replay, ticker, stats reads,
	// drain).
	cmu sync.Mutex

	mu          sync.Mutex
	httpSrv     *http.Server
	stopCompact chan struct{}
	compactDone chan struct{}

	// testHook, when set, runs inside /v1/report handling after admission;
	// tests use it to hold requests in flight deterministically.
	testHook func()
}

// SchemaFor derives the collection schema a mechanism induces: every
// discrete attribute then every numeric attribute, each group in sorted-name
// order. Deterministic so independent runs (and the batch pipeline's
// equality test) agree on column order.
func SchemaFor(meta *privacy.ViewMeta) (relation.Schema, error) {
	var cols []relation.Column
	names := make([]string, 0, len(meta.Discrete))
	for name := range meta.Discrete {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cols = append(cols, relation.Column{Name: name, Kind: relation.Discrete})
	}
	names = names[:0]
	for name := range meta.Numeric {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cols = append(cols, relation.Column{Name: name, Kind: relation.Numeric})
	}
	schema, err := relation.NewSchema(cols...)
	if err != nil {
		return relation.Schema{}, faults.Wrap(faults.ErrBadMeta, err)
	}
	return schema, nil
}

// New validates cfg, recovers the WAL and store from Dir, replays any
// durable-but-unfolded segments, and returns a Service ready to accept
// reports. Recovery is loud: a corrupt sealed segment or checkpoint refuses
// to start rather than serving undercounted statistics.
func New(cfg Config) (*Service, error) {
	if cfg.Dir == "" {
		return nil, faults.Errorf(faults.ErrUsage, "collect: need a collection directory")
	}
	if cfg.Meta == nil {
		return nil, faults.Errorf(faults.ErrBadMeta, "collect: nil mechanism metadata")
	}
	if err := cfg.Meta.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.MaxBatchReports <= 0 {
		cfg.MaxBatchReports = DefaultMaxBatchReports
	}
	tel := cfg.Tel
	if tel == nil {
		tel = telemetry.Default()
	}
	// Endpoint paths, policy names, and collect-specific outcome codes
	// appear as metric labels and log values; all code-chosen, none data.
	tel.Redact.Allow("/v1/report", "/v1/stats", "/healthz", "/metrics",
		"collect", "wal_recover", "wal_rotate", "compact", "drain", "shed",
		"method_not_allowed", "not_found", "mechanism_mismatch", "bad_batch",
		"always", "interval", "never",
		"200", "400", "404", "405", "413", "422", "429", "500", "503")
	schema, err := SchemaFor(cfg.Meta)
	if err != nil {
		return nil, err
	}
	mech := privacy.MechanismFingerprint(cfg.Meta)
	wal, err := Open(filepath.Join(cfg.Dir, WALDirName), Options{
		SegmentBytes: cfg.SegmentBytes,
		Policy:       cfg.Fsync,
		SyncEvery:    cfg.SyncEvery,
		Tel:          tel,
		tapWriter:    cfg.walTap,
	})
	if err != nil {
		return nil, err
	}
	store, err := OpenStore(filepath.Join(cfg.Dir, StoreFileName), schema, mech)
	if err != nil {
		wal.Close()
		return nil, err
	}
	s := &Service{
		meta:     cfg.Meta,
		mech:     mech,
		schema:   schema,
		wal:      wal,
		store:    store,
		tel:      tel,
		sem:      make(chan struct{}, cfg.MaxInFlight),
		maxBatch: cfg.MaxBatchReports,
	}
	// Startup replay: seal whatever the previous process left in the active
	// segment, then fold every sealed segment. After this the statistics
	// reflect every acknowledged batch that reached stable storage.
	if _, err := s.Compact(); err != nil {
		wal.Close()
		return nil, err
	}
	rec := wal.Recovery()
	tel.Log.Info("collector recovered", "op", "wal_recover",
		"segments", rec.Segments, "records", rec.Records,
		"truncated_bytes", rec.TruncatedBytes, "rows", store.Rows(),
		"fsync", cfg.Fsync.String())
	if cfg.CompactEvery > 0 {
		s.stopCompact = make(chan struct{})
		s.compactDone = make(chan struct{})
		go s.compactLoop(cfg.CompactEvery)
	}
	return s, nil
}

// Mechanism returns the pinned mechanism fingerprint.
func (s *Service) Mechanism() string { return s.mech }

// compactLoop is the background compactor: rotate-if-nonempty then fold, on
// a fixed cadence, until Shutdown.
func (s *Service) compactLoop(every time.Duration) {
	defer close(s.compactDone)
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopCompact:
			return
		case <-ticker.C:
			if _, err := s.Compact(); err != nil {
				s.tel.Log.Error("background compaction failed", "op", "compact", telemetry.ErrAttr(err))
			}
		}
	}
}

// Compact seals the active segment (when nonempty) and folds every sealed
// segment into the store in sequence order, deleting each segment after its
// fold checkpoints. Segments at or below the store watermark are deleted
// without folding — they are the crash window between a checkpoint write and
// a segment delete. Returns the number of batches folded.
func (s *Service) Compact() (int, error) {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	if _, err := s.wal.Rotate(); err != nil {
		return 0, err
	}
	segs, err := s.wal.Sealed()
	if err != nil {
		return 0, err
	}
	folded := 0
	for _, seg := range segs {
		if seg.Seq <= s.store.AppliedSeq() {
			if err := os.Remove(seg.Path); err != nil && !os.IsNotExist(err) {
				return folded, faults.Wrap(faults.ErrPartialWrite, err)
			}
			continue
		}
		payloads, err := ReadSegment(seg.Path)
		if err != nil {
			return folded, err
		}
		n, err := s.store.Fold(seg.Seq, payloads)
		if err != nil {
			return folded, err
		}
		folded += n
		if n < len(payloads) {
			s.tel.Metrics.Counter("privateclean_collect_duplicate_batches_total",
				"Batches skipped during folding because their ID already folded.").Add(float64(len(payloads) - n))
		}
		if err := os.Remove(seg.Path); err != nil && !os.IsNotExist(err) {
			return folded, faults.Wrap(faults.ErrPartialWrite, err)
		}
		s.tel.Metrics.Counter("privateclean_collect_segments_compacted_total",
			"WAL segments folded into the statistics store.").Inc()
	}
	s.tel.Metrics.Counter("privateclean_collect_compactions_total",
		"Compaction passes over the WAL.").Inc()
	return folded, nil
}

// Handler returns the service's HTTP handler.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/report", s.instrument("/v1/report", s.handleReport))
	mux.HandleFunc("/v1/stats", s.instrument("/v1/stats", s.handleStats))
	mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("/metrics", s.instrument("/metrics", s.handleMetrics))
	return mux
}

type errorBody struct {
	Error errorInfo `json:"error"`
}

type errorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument mirrors internal/server's request metrics: counter, latency
// histogram, in-flight gauge; labels carry the route and status only.
func (s *Service) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		inflight := s.tel.Metrics.Gauge("privateclean_http_inflight",
			"Requests currently being handled.", telemetry.L("path", path))
		inflight.Add(1)
		defer func() {
			inflight.Add(-1)
			s.tel.Metrics.Counter("privateclean_http_requests_total",
				"HTTP requests, by route and status.",
				telemetry.L("path", path), telemetry.L("status", fmt.Sprintf("%d", rec.status))).Inc()
			s.tel.Metrics.Histogram("privateclean_http_request_seconds",
				"Wall time of HTTP request handling.",
				telemetry.DurationBuckets, telemetry.L("path", path)).Observe(time.Since(start).Seconds())
		}()
		h(rec, r)
	}
}

func (s *Service) writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		status = http.StatusInternalServerError
		body, _ = json.MarshalIndent(errorBody{Error: errorInfo{
			Code:    "internal",
			Message: "encoding response: " + err.Error(),
		}}, "", "  ")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(body, '\n'))
}

func (s *Service) writeError(w http.ResponseWriter, status int, code, message string) {
	s.writeJSON(w, status, errorBody{Error: errorInfo{Code: code, Message: message}})
}

// httpStatusFor maps a classified error to its status and wire code,
// mirroring internal/server: client-shaped input is 4xx, transient
// durability failures (disk full, torn write) are 503 (retryable — the
// client should repost the batch). Corruption of a sealed segment or the
// checkpoint is NOT transient — no retry fixes bit rot — so it maps to a
// plain 500, and clients fail fast instead of spinning down their retry
// budget against a permanently failing collector.
func httpStatusFor(err error) (int, string) {
	switch faults.Kind(err) {
	case faults.ErrUsage, faults.ErrBadQuery:
		return http.StatusBadRequest, telemetry.FaultCode(err)
	case faults.ErrBadInput, faults.ErrBadMeta, faults.ErrBadParams:
		return http.StatusUnprocessableEntity, telemetry.FaultCode(err)
	case faults.ErrInternal:
		return http.StatusInternalServerError, "internal"
	case faults.ErrCorruptCheckpoint:
		return http.StatusInternalServerError, telemetry.FaultCode(err)
	case faults.ErrPartialWrite:
		return http.StatusServiceUnavailable, telemetry.FaultCode(err)
	default:
		return http.StatusBadRequest, "bad_batch"
	}
}

// reportResponse acknowledges one batch.
type reportResponse struct {
	BatchID   string `json:"batch_id"`
	Reports   int    `json:"reports"`
	Duplicate bool   `json:"duplicate"`
}

// validateBatch vets a decoded batch against the pinned mechanism. Only
// attribute *names* and value shapes are checked; discrete values outside
// the released domain are accepted (the batch path's domains are
// data-derived too), but attributes the mechanism does not cover are
// rejected — they were not randomized under the channel the estimator will
// invert.
func (s *Service) validateBatch(b *Batch) (status int, code, msg string) {
	if b.ID == "" || len(b.ID) > maxBatchIDLen {
		return http.StatusBadRequest, "bad_batch", fmt.Sprintf("batch_id must be 1..%d bytes", maxBatchIDLen)
	}
	if b.Mechanism != s.mech {
		return http.StatusUnprocessableEntity, "mechanism_mismatch",
			"batch was randomized under a different mechanism than this collector serves"
	}
	if len(b.Reports) == 0 {
		return http.StatusBadRequest, "bad_batch", "batch has no reports"
	}
	if len(b.Reports) > s.maxBatch {
		return http.StatusRequestEntityTooLarge, "bad_batch",
			fmt.Sprintf("batch of %d reports exceeds the %d-report bound", len(b.Reports), s.maxBatch)
	}
	for i, rep := range b.Reports {
		for name := range rep.Discrete {
			if _, ok := s.meta.Discrete[name]; !ok {
				return http.StatusUnprocessableEntity, "bad_batch",
					fmt.Sprintf("report %d: unknown discrete attribute %q", i, name)
			}
		}
		for name, x := range rep.Numeric {
			if _, ok := s.meta.Numeric[name]; !ok {
				return http.StatusUnprocessableEntity, "bad_batch",
					fmt.Sprintf("report %d: unknown numeric attribute %q", i, name)
			}
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return http.StatusUnprocessableEntity, "bad_batch",
					fmt.Sprintf("report %d: non-finite value for %q", i, name)
			}
		}
	}
	return 0, "", ""
}

func (s *Service) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST a JSON batch to /v1/report")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBatchBytes))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_batch", "reading request body: "+err.Error())
		return
	}
	var b Batch
	if err := json.Unmarshal(body, &b); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_batch",
			`body must be JSON {"batch_id", "mechanism", "reports": [...]}: `+err.Error())
		return
	}
	if status, code, msg := s.validateBatch(&b); status != 0 {
		s.writeError(w, status, code, msg)
		return
	}

	// Bounded admission: a full semaphore sheds immediately with a
	// Retry-After hint rather than queueing WAL appends unboundedly.
	select {
	case s.sem <- struct{}{}:
	default:
		w.Header().Set("Retry-After", "1")
		s.tel.Metrics.Counter("privateclean_http_shed_total",
			"Requests shed with 429 because MaxInFlight was reached.").Inc()
		s.writeError(w, http.StatusTooManyRequests, "shed", "collector at capacity; retry")
		return
	}
	defer func() { <-s.sem }()
	if s.testHook != nil {
		s.testHook()
	}

	// A batch that already folded is acknowledged without a second append —
	// the client is retrying an ack it lost, and the data is already
	// counted. Duplicates still in the WAL (not yet folded) do get appended
	// again; the fold path deduplicates them by ID.
	if s.store.HasBatch(b.ID) {
		s.tel.Metrics.Counter("privateclean_collect_duplicate_batches_total",
			"Batches skipped during folding because their ID already folded.").Inc()
		s.writeJSON(w, http.StatusOK, reportResponse{BatchID: b.ID, Reports: len(b.Reports), Duplicate: true})
		return
	}

	// Re-marshal canonically: the WAL stores this struct's rendering, not
	// the client's raw bytes, so replay decodes exactly what validation saw.
	payload, err := json.Marshal(Batch{ID: b.ID, Mechanism: b.Mechanism, Reports: b.Reports})
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "internal", "encoding batch: "+err.Error())
		return
	}
	if _, err := s.wal.Append(payload); err != nil {
		status, code := httpStatusFor(err)
		if status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		s.tel.Log.Error("batch append failed", "op", "collect", telemetry.ErrAttr(err))
		s.writeError(w, status, code, err.Error())
		return
	}
	s.tel.Metrics.Counter("privateclean_collect_batches_accepted_total",
		"Batches acknowledged after a durable WAL append.").Inc()
	s.tel.Metrics.Counter("privateclean_collect_reports_accepted_total",
		"Reports acknowledged after a durable WAL append.").Add(float64(len(b.Reports)))
	s.writeJSON(w, http.StatusOK, reportResponse{BatchID: b.ID, Reports: len(b.Reports)})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET /v1/stats")
		return
	}
	// Compact-on-read so the response reflects every acknowledged batch,
	// not just those the background cadence has folded.
	if _, err := s.Compact(); err != nil {
		status, code := httpStatusFor(err)
		s.tel.Log.Error("stats compaction failed", "op", "compact", telemetry.ErrAttr(err))
		s.writeError(w, status, code, err.Error())
		return
	}
	body, err := s.store.MarshalStats()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.tel.Metrics.WritePrometheus(w)
}

// Serve accepts connections on l until Shutdown; http.ErrServerClosed after
// a clean shutdown.
func (s *Service) Serve(l net.Listener) error {
	srv := &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	s.httpSrv = srv
	s.mu.Unlock()
	return srv.Serve(l)
}

// ListenAndServe listens on addr and serves until Shutdown, reporting the
// bound address through ready (useful with ":0"); pass nil when not needed.
func (s *Service) ListenAndServe(addr string, ready chan<- net.Addr) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return faults.Wrap(faults.ErrUsage, err)
	}
	if ready != nil {
		ready <- l.Addr()
	}
	return s.Serve(l)
}

// Shutdown is the graceful drain: stop accepting connections and wait out
// in-flight requests (up to ctx's deadline), stop the background compactor,
// seal and fold everything in the WAL, and close it. After a nil return
// every acknowledged batch is folded into the checkpoint on disk.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	srv := s.httpSrv
	s.httpSrv = nil
	s.mu.Unlock()
	var httpErr error
	if srv != nil {
		httpErr = srv.Shutdown(ctx)
		if errors.Is(httpErr, http.ErrServerClosed) {
			httpErr = nil
		}
		if httpErr != nil {
			// The deadline expired with requests in flight: force-close so
			// the drain cannot hang, and surface a typed fault — aborted
			// responses are partial writes from the clients' view.
			srv.Close()
			httpErr = faults.Wrap(faults.ErrPartialWrite, fmt.Errorf("collect: drain aborted in-flight requests: %w", httpErr))
			s.tel.Metrics.Counter("privateclean_http_drain_aborts_total",
				"Graceful drains that hit their deadline and force-closed connections.").Inc()
			s.tel.Log.Error("drain deadline forced connection abort", "op", "drain", telemetry.ErrAttr(httpErr))
		}
	}
	s.stopCompactor()
	if _, err := s.Compact(); err != nil {
		s.wal.Close()
		return err
	}
	if err := s.wal.Close(); err != nil {
		return err
	}
	s.tel.Log.Info("collector drained", "op", "drain", "rows", s.store.Rows(), "batches", s.store.BatchCount())
	return httpErr
}

func (s *Service) stopCompactor() {
	s.mu.Lock()
	stop, done := s.stopCompact, s.compactDone
	s.stopCompact, s.compactDone = nil, nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// abort is the in-process stand-in for kill -9 in tests: stop the compactor
// goroutine (a real kill would take it down too) and drop the WAL file
// handle without syncing, folding, or draining anything.
func (s *Service) abort() {
	s.stopCompactor()
	s.wal.abort()
}
