package collect

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"privateclean/internal/faults"
	"privateclean/internal/privacy"
	"privateclean/internal/relation"
	"privateclean/internal/telemetry"
)

// DefaultMaxInFlight bounds concurrently executing /v1/report requests when
// Config.MaxInFlight is zero.
const DefaultMaxInFlight = 64

// DefaultMaxBatchReports bounds one batch when Config.MaxBatchReports is
// zero.
const DefaultMaxBatchReports = 4096

// maxBatchBytes caps a /v1/report body.
const maxBatchBytes = 8 << 20

// maxBatchIDLen bounds a batch ID; IDs are client-chosen idempotency keys,
// not storage.
const maxBatchIDLen = 256

// StoreFileName is the checkpoint file inside the collection directory;
// WALDirName holds the segments.
const (
	StoreFileName = "store.json"
	WALDirName    = "wal"
)

// Config assembles a Service. Dir and Meta are required.
type Config struct {
	// Dir is the collection directory: WAL segments under Dir/wal, the
	// statistics checkpoint at Dir/store.json.
	Dir string
	// Meta is the mechanism metadata every client randomized under. Its
	// fingerprint (privacy.MechanismFingerprint) pins the collection: a
	// batch declaring a different fingerprint is rejected.
	Meta *privacy.ViewMeta
	// Fsync selects WAL durability (default SyncAlways); SyncEvery the
	// interval-policy cadence.
	Fsync     SyncPolicy
	SyncEvery time.Duration
	// SegmentBytes is the WAL rotation threshold (default
	// DefaultSegmentBytes).
	SegmentBytes int64
	// MaxInFlight bounds concurrently admitted batches; excess requests are
	// shed with 429 (default DefaultMaxInFlight).
	MaxInFlight int
	// MaxBatchReports bounds one batch (default DefaultMaxBatchReports).
	MaxBatchReports int
	// CompactEvery is the background compaction cadence. Zero or negative
	// disables the background compactor; compaction then happens only at
	// startup, on /v1/stats reads, on drain, and via explicit Compact calls
	// (tests use this for determinism).
	CompactEvery time.Duration
	// Tel is the telemetry set (default telemetry.Default()).
	Tel *telemetry.Set

	// walTap forwards to Options.tapWriter for write-fault injection.
	walTap func(io.Writer) io.Writer
}

// maxAckTimes caps the ack-time map behind the freshness histogram: each
// entry lives only until its batch folds, so the cap matters only when
// compaction stalls — at which point freshness sampling degrades gracefully
// (new batches go unsampled) instead of the map growing with the backlog.
const maxAckTimes = 65536

// Service is the LDP collection endpoint:
//
//	POST /v1/report   {"batch_id", "mechanism", "reports": [...]} -> ack after WAL append
//	GET  /v1/stats    current folded statistics (the `pc stats` JSON format)
//	GET  /v1/statusz  pipeline-health summary (watermark, backlog, freshness)
//	GET  /v1/tracez   recently completed traces from the in-memory ring
//	GET  /healthz     liveness
//	GET  /metrics     Prometheus text exposition
type Service struct {
	meta     *privacy.ViewMeta
	mech     string
	schema   relation.Schema
	wal      *WAL
	store    *Store
	tel      *telemetry.Set
	sem      chan struct{}
	maxBatch int
	start    time.Time

	// cmu serializes compaction (startup replay, ticker, stats reads,
	// drain).
	cmu sync.Mutex

	mu          sync.Mutex
	httpSrv     *http.Server
	stopCompact chan struct{}
	compactDone chan struct{}

	// obsMu guards the observability state: ack times awaiting their fold
	// (feeding the freshness histogram) and the last fold/compact stamps
	// surfaced by /v1/statusz.
	obsMu       sync.Mutex
	ackTimes    map[string]time.Time
	lastFold    time.Time
	lastCompact time.Time

	// testHook, when set, runs inside /v1/report handling after admission;
	// tests use it to hold requests in flight deterministically.
	testHook func()
}

// SchemaFor derives the collection schema a mechanism induces: every
// discrete attribute then every numeric attribute, each group in sorted-name
// order. Deterministic so independent runs (and the batch pipeline's
// equality test) agree on column order.
func SchemaFor(meta *privacy.ViewMeta) (relation.Schema, error) {
	var cols []relation.Column
	names := make([]string, 0, len(meta.Discrete))
	for name := range meta.Discrete {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cols = append(cols, relation.Column{Name: name, Kind: relation.Discrete})
	}
	names = names[:0]
	for name := range meta.Numeric {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cols = append(cols, relation.Column{Name: name, Kind: relation.Numeric})
	}
	schema, err := relation.NewSchema(cols...)
	if err != nil {
		return relation.Schema{}, faults.Wrap(faults.ErrBadMeta, err)
	}
	return schema, nil
}

// New validates cfg, recovers the WAL and store from Dir, replays any
// durable-but-unfolded segments, and returns a Service ready to accept
// reports. Recovery is loud: a corrupt sealed segment or checkpoint refuses
// to start rather than serving undercounted statistics.
func New(cfg Config) (*Service, error) {
	if cfg.Dir == "" {
		return nil, faults.Errorf(faults.ErrUsage, "collect: need a collection directory")
	}
	if cfg.Meta == nil {
		return nil, faults.Errorf(faults.ErrBadMeta, "collect: nil mechanism metadata")
	}
	if err := cfg.Meta.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.MaxBatchReports <= 0 {
		cfg.MaxBatchReports = DefaultMaxBatchReports
	}
	tel := cfg.Tel
	if tel == nil {
		tel = telemetry.Default()
	}
	// Endpoint paths, policy names, and collect-specific outcome codes
	// appear as metric labels and log values; all code-chosen, none data.
	tel.Redact.Allow("/v1/report", "/v1/stats", "/v1/statusz", "/v1/tracez",
		"/healthz", "/metrics",
		"collect", "wal_recover", "wal_rotate", "compact", "drain", "shed",
		"method_not_allowed", "not_found", "mechanism_mismatch", "bad_batch",
		"always", "interval", "never",
		"200", "400", "404", "405", "413", "422", "429", "500", "503")
	schema, err := SchemaFor(cfg.Meta)
	if err != nil {
		return nil, err
	}
	mech := privacy.MechanismFingerprint(cfg.Meta)
	wal, err := Open(filepath.Join(cfg.Dir, WALDirName), Options{
		SegmentBytes: cfg.SegmentBytes,
		Policy:       cfg.Fsync,
		SyncEvery:    cfg.SyncEvery,
		Tel:          tel,
		tapWriter:    cfg.walTap,
	})
	if err != nil {
		return nil, err
	}
	store, err := OpenStore(filepath.Join(cfg.Dir, StoreFileName), schema, mech)
	if err != nil {
		wal.Close()
		return nil, err
	}
	s := &Service{
		meta:     cfg.Meta,
		mech:     mech,
		schema:   schema,
		wal:      wal,
		store:    store,
		tel:      tel,
		sem:      make(chan struct{}, cfg.MaxInFlight),
		maxBatch: cfg.MaxBatchReports,
		start:    time.Now(),
		ackTimes: make(map[string]time.Time),
	}
	// Startup replay: seal whatever the previous process left in the active
	// segment, then fold every sealed segment. After this the statistics
	// reflect every acknowledged batch that reached stable storage.
	if _, err := s.Compact(); err != nil {
		wal.Close()
		return nil, err
	}
	rec := wal.Recovery()
	tel.Log.Info("collector recovered", "op", "wal_recover",
		"segments", rec.Segments, "records", rec.Records,
		"truncated_bytes", rec.TruncatedBytes, "rows", store.Rows(),
		"fsync", cfg.Fsync.String())
	if cfg.CompactEvery > 0 {
		s.stopCompact = make(chan struct{})
		s.compactDone = make(chan struct{})
		go s.compactLoop(cfg.CompactEvery)
	}
	return s, nil
}

// Mechanism returns the pinned mechanism fingerprint.
func (s *Service) Mechanism() string { return s.mech }

// compactLoop is the background compactor: rotate-if-nonempty then fold, on
// a fixed cadence, until Shutdown.
func (s *Service) compactLoop(every time.Duration) {
	defer close(s.compactDone)
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopCompact:
			return
		case <-ticker.C:
			if _, err := s.Compact(); err != nil {
				s.tel.Log.Error("background compaction failed", "op", "compact", telemetry.ErrAttr(err))
			}
		}
	}
}

// Compact seals the active segment (when nonempty) and folds every sealed
// segment into the store in sequence order, deleting each segment after its
// fold checkpoints. Segments at or below the store watermark are deleted
// without folding — they are the crash window between a checkpoint write and
// a segment delete. Returns the number of batches folded.
//
// Each segment's fold runs under its own "fold" span linked to the trace ID
// of every batch it newly applies — the asynchronous half of following a
// batch: the client's trace ends at the ack, and the fold span's links pick
// the story back up at checkpoint commit.
func (s *Service) Compact() (int, error) {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	if _, err := s.wal.Rotate(); err != nil {
		return 0, err
	}
	segs, err := s.wal.Sealed()
	if err != nil {
		return 0, err
	}
	folded := 0
	for _, seg := range segs {
		if seg.Seq <= s.store.AppliedSeq() {
			if err := os.Remove(seg.Path); err != nil && !os.IsNotExist(err) {
				return folded, faults.Wrap(faults.ErrPartialWrite, err)
			}
			continue
		}
		n, err := s.foldSegment(seg)
		folded += n
		if err != nil {
			return folded, err
		}
		if err := os.Remove(seg.Path); err != nil && !os.IsNotExist(err) {
			return folded, faults.Wrap(faults.ErrPartialWrite, err)
		}
		s.tel.Metrics.Counter("privateclean_collect_segments_compacted_total",
			"WAL segments folded into the statistics store.").Inc()
	}
	s.tel.Metrics.Counter("privateclean_collect_compactions_total",
		"Compaction passes over the WAL.").Inc()
	s.obsMu.Lock()
	s.lastCompact = time.Now()
	s.obsMu.Unlock()
	s.UpdateGauges()
	return folded, nil
}

// foldSegment folds one sealed segment under a traced span, observing the
// fold latency and, for every newly applied batch, the ack-to-commit
// freshness. Callers hold cmu.
func (s *Service) foldSegment(seg SegmentInfo) (int, error) {
	sp := s.tel.Trace.StartSpan(nil, "fold", telemetry.A("segment", int(seg.Seq)))
	defer sp.End()
	start := time.Now()
	defer func() {
		s.tel.Metrics.Histogram("privateclean_collect_fold_seconds",
			"Wall time of folding one sealed WAL segment into the checkpoint.",
			telemetry.DurationBuckets).Observe(time.Since(start).Seconds())
	}()
	payloads, err := ReadSegment(seg.Path)
	if err != nil {
		sp.Set("err", err)
		return 0, err
	}
	refs, err := s.store.Fold(seg.Seq, payloads)
	if err != nil {
		sp.Set("err", err)
		return 0, err
	}
	sp.Set("records", len(payloads))
	sp.Set("batches", len(refs))
	for _, ref := range refs {
		if ref.TraceID != "" {
			sp.Link(ref.TraceID)
		}
	}
	if len(refs) < len(payloads) {
		s.tel.Metrics.Counter("privateclean_collect_duplicate_batches_total",
			"Batches skipped during folding because their ID already folded.").Add(float64(len(payloads) - len(refs)))
	}
	s.observeFreshness(refs)
	return len(refs), nil
}

// observeFreshness turns recorded ack times into end-to-end freshness
// observations (batch ack -> checkpoint commit) for the newly folded
// batches, and stamps the fold time for /v1/statusz.
func (s *Service) observeFreshness(refs []FoldedBatch) {
	now := time.Now()
	hist := s.tel.Metrics.Histogram("privateclean_collect_freshness_seconds",
		"End-to-end pipeline freshness: time from a batch's durable ack to the checkpoint commit that folded it.",
		telemetry.FreshnessBuckets)
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	if len(refs) > 0 {
		s.lastFold = now
	}
	for _, ref := range refs {
		if acked, ok := s.ackTimes[ref.ID]; ok {
			hist.Observe(now.Sub(acked).Seconds())
			delete(s.ackTimes, ref.ID)
		}
	}
}

// recordAck stamps a batch's ack time so its eventual fold can observe
// freshness. Best-effort: bounded by maxAckTimes, lost on restart (a
// restarted collector cannot know when a pre-crash batch was acked).
func (s *Service) recordAck(id string) {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	if len(s.ackTimes) >= maxAckTimes {
		return
	}
	s.ackTimes[id] = time.Now()
}

// UpdateGauges refreshes the pipeline-lag gauges: applied/active sequence
// watermarks, the sealed-segment backlog awaiting a fold, WAL disk usage,
// and admission-queue depth. Called after every compaction and from the
// runtime-metrics sampling tick.
func (s *Service) UpdateGauges() {
	applied, active := s.store.AppliedSeq(), s.wal.ActiveSeq()
	s.tel.Metrics.Gauge("privateclean_collect_applied_seq",
		"Highest WAL segment folded into the statistics checkpoint.").Set(float64(applied))
	s.tel.Metrics.Gauge("privateclean_collect_active_seq",
		"Sequence number of the active WAL segment.").Set(float64(active))
	s.tel.Metrics.Gauge("privateclean_collect_seq_lag",
		"Applied-sequence lag: sealed segments not yet folded (active_seq - 1 - applied_seq, floored at 0).").Set(float64(seqLag(applied, active)))
	s.tel.Metrics.Gauge("privateclean_collect_sealed_backlog",
		"Sealed WAL segments on disk awaiting compaction.").Set(float64(s.sealedBacklog()))
	s.tel.Metrics.Gauge("privateclean_collect_wal_disk_bytes",
		"Total bytes of WAL segment files on disk.").Set(float64(s.wal.DiskBytes()))
	s.tel.Metrics.Gauge("privateclean_collect_wal_segments",
		"WAL segment files on disk (sealed + active).").Set(float64(s.wal.SegmentCount()))
	s.tel.Metrics.Gauge("privateclean_collect_admission_inflight",
		"Batches currently admitted past the /v1/report semaphore.").Set(float64(len(s.sem)))
}

func seqLag(applied, active uint64) uint64 {
	if active <= applied+1 {
		return 0
	}
	return active - 1 - applied
}

func (s *Service) sealedBacklog() int {
	segs, err := s.wal.Sealed()
	if err != nil {
		return 0
	}
	n := 0
	applied := s.store.AppliedSeq()
	for _, seg := range segs {
		if seg.Seq > applied {
			n++
		}
	}
	return n
}

// Handler returns the service's HTTP handler.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/report", s.instrument("/v1/report", s.handleReport))
	mux.HandleFunc("/v1/stats", s.instrument("/v1/stats", s.handleStats))
	mux.HandleFunc("/v1/statusz", s.instrument("/v1/statusz", s.handleStatusz))
	mux.HandleFunc("/v1/tracez", s.instrument("/v1/tracez", s.handleTracez))
	mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("/metrics", s.instrument("/metrics", s.handleMetrics))
	return mux
}

type errorBody struct {
	Error errorInfo `json:"error"`
}

type errorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument mirrors internal/server's request metrics: counter, latency
// histogram, in-flight gauge; labels carry the route and status only.
func (s *Service) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		inflight := s.tel.Metrics.Gauge("privateclean_http_inflight",
			"Requests currently being handled.", telemetry.L("path", path))
		inflight.Add(1)
		defer func() {
			inflight.Add(-1)
			s.tel.Metrics.Counter("privateclean_http_requests_total",
				"HTTP requests, by route and status.",
				telemetry.L("path", path), telemetry.L("status", fmt.Sprintf("%d", rec.status))).Inc()
			s.tel.Metrics.Histogram("privateclean_http_request_seconds",
				"Wall time of HTTP request handling.",
				telemetry.DurationBuckets, telemetry.L("path", path)).Observe(time.Since(start).Seconds())
		}()
		h(rec, r)
	}
}

func (s *Service) writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		status = http.StatusInternalServerError
		body, _ = json.MarshalIndent(errorBody{Error: errorInfo{
			Code:    "internal",
			Message: "encoding response: " + err.Error(),
		}}, "", "  ")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(body, '\n'))
}

func (s *Service) writeError(w http.ResponseWriter, status int, code, message string) {
	s.writeJSON(w, status, errorBody{Error: errorInfo{Code: code, Message: message}})
}

// httpStatusFor maps a classified error to its status and wire code,
// mirroring internal/server: client-shaped input is 4xx, transient
// durability failures (disk full, torn write) are 503 (retryable — the
// client should repost the batch). Corruption of a sealed segment or the
// checkpoint is NOT transient — no retry fixes bit rot — so it maps to a
// plain 500, and clients fail fast instead of spinning down their retry
// budget against a permanently failing collector.
func httpStatusFor(err error) (int, string) {
	switch faults.Kind(err) {
	case faults.ErrUsage, faults.ErrBadQuery:
		return http.StatusBadRequest, telemetry.FaultCode(err)
	case faults.ErrBadInput, faults.ErrBadMeta, faults.ErrBadParams:
		return http.StatusUnprocessableEntity, telemetry.FaultCode(err)
	case faults.ErrInternal:
		return http.StatusInternalServerError, "internal"
	case faults.ErrCorruptCheckpoint:
		return http.StatusInternalServerError, telemetry.FaultCode(err)
	case faults.ErrPartialWrite:
		return http.StatusServiceUnavailable, telemetry.FaultCode(err)
	default:
		return http.StatusBadRequest, "bad_batch"
	}
}

// reportResponse acknowledges one batch.
type reportResponse struct {
	BatchID   string `json:"batch_id"`
	Reports   int    `json:"reports"`
	Duplicate bool   `json:"duplicate"`
}

// validateBatch vets a decoded batch against the pinned mechanism. Only
// attribute *names* and value shapes are checked; discrete values outside
// the released domain are accepted (the batch path's domains are
// data-derived too), but attributes the mechanism does not cover are
// rejected — they were not randomized under the channel the estimator will
// invert.
func (s *Service) validateBatch(b *Batch) (status int, code, msg string) {
	if b.ID == "" || len(b.ID) > maxBatchIDLen {
		return http.StatusBadRequest, "bad_batch", fmt.Sprintf("batch_id must be 1..%d bytes", maxBatchIDLen)
	}
	if b.Mechanism != s.mech {
		return http.StatusUnprocessableEntity, "mechanism_mismatch",
			"batch was randomized under a different mechanism than this collector serves"
	}
	if len(b.Reports) == 0 {
		return http.StatusBadRequest, "bad_batch", "batch has no reports"
	}
	if len(b.Reports) > s.maxBatch {
		return http.StatusRequestEntityTooLarge, "bad_batch",
			fmt.Sprintf("batch of %d reports exceeds the %d-report bound", len(b.Reports), s.maxBatch)
	}
	for i, rep := range b.Reports {
		for name := range rep.Discrete {
			if _, ok := s.meta.Discrete[name]; !ok {
				return http.StatusUnprocessableEntity, "bad_batch",
					fmt.Sprintf("report %d: unknown discrete attribute %q", i, name)
			}
		}
		for name, x := range rep.Numeric {
			if _, ok := s.meta.Numeric[name]; !ok {
				return http.StatusUnprocessableEntity, "bad_batch",
					fmt.Sprintf("report %d: unknown numeric attribute %q", i, name)
			}
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return http.StatusUnprocessableEntity, "bad_batch",
					fmt.Sprintf("report %d: non-finite value for %q", i, name)
			}
		}
	}
	return 0, "", ""
}

func (s *Service) handleReport(w http.ResponseWriter, r *http.Request) {
	// Adopt the client's trace context (strictly validated) so the report
	// handler's span shares the trace that randomized the batch, and echo it
	// on the ack so the client can correlate. A missing or malformed header
	// just starts a fresh trace.
	remoteTrace, remoteSpan, _ := telemetry.ParseTraceparent(r.Header.Get("traceparent"))
	sp := s.tel.Trace.StartRemoteSpan(remoteTrace, remoteSpan, "collect_report")
	defer sp.End()
	if tp := sp.Traceparent(); tp != "" {
		w.Header().Set("traceparent", tp)
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST a JSON batch to /v1/report")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBatchBytes))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_batch", "reading request body: "+err.Error())
		return
	}
	var b Batch
	if err := json.Unmarshal(body, &b); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_batch",
			`body must be JSON {"batch_id", "mechanism", "reports": [...]}: `+err.Error())
		return
	}
	if status, code, msg := s.validateBatch(&b); status != 0 {
		s.writeError(w, status, code, msg)
		return
	}
	// The trace ID that rides into the WAL (and later into fold span links)
	// must be shape-valid: prefer the batch's own, fall back to the header's,
	// drop anything malformed.
	if !telemetry.ValidTraceID(b.TraceID) {
		b.TraceID = ""
	}
	if b.TraceID == "" && remoteTrace != "" {
		b.TraceID = remoteTrace
	}
	sp.Set("reports", len(b.Reports))

	// Bounded admission: a full semaphore sheds immediately with a
	// Retry-After hint rather than queueing WAL appends unboundedly.
	select {
	case s.sem <- struct{}{}:
	default:
		w.Header().Set("Retry-After", "1")
		s.tel.Metrics.Counter("privateclean_http_shed_total",
			"Requests shed with 429 because MaxInFlight was reached.").Inc()
		s.writeError(w, http.StatusTooManyRequests, "shed", "collector at capacity; retry")
		return
	}
	defer func() { <-s.sem }()
	if s.testHook != nil {
		s.testHook()
	}

	// A batch that already folded is acknowledged without a second append —
	// the client is retrying an ack it lost, and the data is already
	// counted. Duplicates still in the WAL (not yet folded) do get appended
	// again; the fold path deduplicates them by ID.
	if s.store.HasBatch(b.ID) {
		s.tel.Metrics.Counter("privateclean_collect_duplicate_batches_total",
			"Batches skipped during folding because their ID already folded.").Inc()
		sp.Set("duplicate", true)
		s.writeJSON(w, http.StatusOK, reportResponse{BatchID: b.ID, Reports: len(b.Reports), Duplicate: true})
		return
	}

	// Re-marshal canonically: the WAL stores this struct's rendering, not
	// the client's raw bytes, so replay decodes exactly what validation saw.
	payload, err := json.Marshal(Batch{ID: b.ID, Mechanism: b.Mechanism, Reports: b.Reports, TraceID: b.TraceID})
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "internal", "encoding batch: "+err.Error())
		return
	}
	wsp := s.tel.Trace.StartSpan(sp, "wal_append")
	seq, err := s.wal.Append(payload)
	wsp.End()
	if err != nil {
		status, code := httpStatusFor(err)
		if status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		sp.Set("err", err)
		s.tel.Log.Error("batch append failed", "op", "collect", telemetry.ErrAttr(err))
		s.writeError(w, status, code, err.Error())
		return
	}
	s.recordAck(b.ID)
	sp.Set("segment", int(seq))
	s.tel.Metrics.Counter("privateclean_collect_batches_accepted_total",
		"Batches acknowledged after a durable WAL append.").Inc()
	s.tel.Metrics.Counter("privateclean_collect_reports_accepted_total",
		"Reports acknowledged after a durable WAL append.").Add(float64(len(b.Reports)))
	s.writeJSON(w, http.StatusOK, reportResponse{BatchID: b.ID, Reports: len(b.Reports)})
}

// statuszResponse is the /v1/statusz pipeline-health summary. Everything in
// it is an aggregate, sequence number, or timestamp — no cell values, IDs,
// or payload bytes.
type statuszResponse struct {
	Service       string  `json:"service"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Mechanism     string  `json:"mechanism"`
	TotalEpsilon  float64 `json:"total_epsilon"`

	AppliedSeq    uint64 `json:"applied_seq"`
	ActiveSeq     uint64 `json:"active_seq"`
	SeqLag        uint64 `json:"seq_lag"`
	SealedBacklog int    `json:"sealed_backlog"`
	WALDiskBytes  int64  `json:"wal_disk_bytes"`

	Rows    int `json:"rows"`
	Batches int `json:"batches"`

	// LastFoldUnix is 0 when nothing has folded since start; the ages are
	// -1 then, so "never" cannot be confused with "just now".
	LastFoldUnix          int64   `json:"last_fold_unix"`
	LastFoldAgeSeconds    float64 `json:"last_fold_age_seconds"`
	LastCompactUnix       int64   `json:"last_compact_unix"`
	LastCompactAgeSeconds float64 `json:"last_compact_age_seconds"`

	FreshnessCount      uint64  `json:"freshness_count"`
	FreshnessSumSeconds float64 `json:"freshness_sum_seconds"`
	PendingAcks         int     `json:"pending_acks"`
	Inflight            int     `json:"inflight"`
}

func stampAge(t, now time.Time) (unix int64, age float64) {
	if t.IsZero() {
		return 0, -1
	}
	return t.Unix(), now.Sub(t).Seconds()
}

func (s *Service) handleStatusz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET /v1/statusz")
		return
	}
	s.UpdateGauges()
	now := time.Now()
	fresh := s.tel.Metrics.Histogram("privateclean_collect_freshness_seconds",
		"End-to-end pipeline freshness: time from a batch's durable ack to the checkpoint commit that folded it.",
		telemetry.FreshnessBuckets)
	s.obsMu.Lock()
	lastFold, lastCompact, pending := s.lastFold, s.lastCompact, len(s.ackTimes)
	s.obsMu.Unlock()
	resp := statuszResponse{
		Service:       "collect",
		UptimeSeconds: now.Sub(s.start).Seconds(),
		Mechanism:     s.mech,
		TotalEpsilon:  s.meta.TotalEpsilon(),
		AppliedSeq:    s.store.AppliedSeq(),
		ActiveSeq:     s.wal.ActiveSeq(),
		WALDiskBytes:  s.wal.DiskBytes(),
		SealedBacklog: s.sealedBacklog(),
		Rows:          s.store.Rows(),
		Batches:       s.store.BatchCount(),

		FreshnessCount:      fresh.Count(),
		FreshnessSumSeconds: fresh.Sum(),
		PendingAcks:         pending,
		Inflight:            len(s.sem),
	}
	resp.SeqLag = seqLag(resp.AppliedSeq, resp.ActiveSeq)
	resp.LastFoldUnix, resp.LastFoldAgeSeconds = stampAge(lastFold, now)
	resp.LastCompactUnix, resp.LastCompactAgeSeconds = stampAge(lastCompact, now)
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleTracez(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET /v1/tracez")
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"traces": s.tel.Trace.RecentJSON()})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET /v1/stats")
		return
	}
	// Compact-on-read so the response reflects every acknowledged batch,
	// not just those the background cadence has folded.
	if _, err := s.Compact(); err != nil {
		status, code := httpStatusFor(err)
		s.tel.Log.Error("stats compaction failed", "op", "compact", telemetry.ErrAttr(err))
		s.writeError(w, status, code, err.Error())
		return
	}
	body, err := s.store.MarshalStats()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.tel.Metrics.WritePrometheus(w)
}

// Serve accepts connections on l until Shutdown; http.ErrServerClosed after
// a clean shutdown.
func (s *Service) Serve(l net.Listener) error {
	srv := &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	s.httpSrv = srv
	s.mu.Unlock()
	return srv.Serve(l)
}

// ListenAndServe listens on addr and serves until Shutdown, reporting the
// bound address through ready (useful with ":0"); pass nil when not needed.
func (s *Service) ListenAndServe(addr string, ready chan<- net.Addr) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return faults.Wrap(faults.ErrUsage, err)
	}
	if ready != nil {
		ready <- l.Addr()
	}
	return s.Serve(l)
}

// Shutdown is the graceful drain: stop accepting connections and wait out
// in-flight requests (up to ctx's deadline), stop the background compactor,
// seal and fold everything in the WAL, and close it. After a nil return
// every acknowledged batch is folded into the checkpoint on disk.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	srv := s.httpSrv
	s.httpSrv = nil
	s.mu.Unlock()
	var httpErr error
	if srv != nil {
		httpErr = srv.Shutdown(ctx)
		if errors.Is(httpErr, http.ErrServerClosed) {
			httpErr = nil
		}
		if httpErr != nil {
			// The deadline expired with requests in flight: force-close so
			// the drain cannot hang, and surface a typed fault — aborted
			// responses are partial writes from the clients' view.
			srv.Close()
			httpErr = faults.Wrap(faults.ErrPartialWrite, fmt.Errorf("collect: drain aborted in-flight requests: %w", httpErr))
			s.tel.Metrics.Counter("privateclean_http_drain_aborts_total",
				"Graceful drains that hit their deadline and force-closed connections.").Inc()
			s.tel.Log.Error("drain deadline forced connection abort", "op", "drain", telemetry.ErrAttr(httpErr))
		}
	}
	s.stopCompactor()
	if _, err := s.Compact(); err != nil {
		s.wal.Close()
		return err
	}
	if err := s.wal.Close(); err != nil {
		return err
	}
	s.tel.Log.Info("collector drained", "op", "drain", "rows", s.store.Rows(), "batches", s.store.BatchCount())
	return httpErr
}

func (s *Service) stopCompactor() {
	s.mu.Lock()
	stop, done := s.stopCompact, s.compactDone
	s.stopCompact, s.compactDone = nil, nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// abort is the in-process stand-in for kill -9 in tests: stop the compactor
// goroutine (a real kill would take it down too) and drop the WAL file
// handle without syncing, folding, or draining anything.
func (s *Service) abort() {
	s.stopCompactor()
	s.wal.abort()
}
