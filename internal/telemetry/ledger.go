package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"privateclean/internal/atomicio"
	"privateclean/internal/faults"
)

// The ε-budget ledger is the session file recording, per privatize run, the
// per-attribute ε_i, the Theorem 1 composition ε = Σ ε_i, and enough
// mechanism fingerprints to recognize repeated identical releases. Repeated
// runs over the same input accumulate: CumulativeFor sums the composed ε of
// every distinct release of one input, which is exactly the quantity an
// operator must watch — local DP composes across releases of the same
// records.
//
// A release is identified by (input, params, seed, chunk size). Re-running
// the byte-identical release (same tuple — the chunked pipeline is
// deterministic in it) is recorded but marked duplicate and adds no spend:
// publishing the same bytes twice reveals nothing new. A new seed or new
// parameters is a fresh release and composes.

// LedgerVersion guards the ledger schema.
const LedgerVersion = 1

// LedgerFileSuffix is the conventional ledger sidecar name: spend against
// "x.csv" is tracked in "x.csv.ledger.json" unless the caller chooses
// otherwise.
const LedgerFileSuffix = ".ledger.json"

// LedgerEntry records one privatize run.
type LedgerEntry struct {
	// Time is the completion time, RFC 3339 (supplied by the caller so
	// deterministic tests can pin it).
	Time string `json:"time,omitempty"`
	// InputSHA identifies the input dataset; ParamsSHA, Seed, and ChunkSize
	// complete the release fingerprint.
	InputSHA  string `json:"input_sha256"`
	ParamsSHA string `json:"params_sha256"`
	Seed      int64  `json:"seed"`
	ChunkSize int    `json:"chunk_size,omitempty"`
	// Out is the released view path (operator configuration, not data).
	Out string `json:"out,omitempty"`
	// Rows is the number of released rows.
	Rows int `json:"rows"`
	// PerAttribute maps attribute name -> ε_i. Attributes with an unbounded
	// ε (p = 0 or b = 0) are listed in Unbounded instead, since JSON cannot
	// carry +Inf.
	PerAttribute map[string]float64 `json:"epsilon_per_attribute,omitempty"`
	// Composed is the Theorem 1 composition Σ ε_i over bounded attributes.
	Composed float64 `json:"epsilon_composed"`
	// Unbounded names attributes released with no privacy (ε_i = +Inf),
	// which make the true composed ε unbounded too.
	Unbounded []string `json:"epsilon_unbounded_attrs,omitempty"`
	// Duplicate marks a byte-identical re-release (same input, params,
	// seed, and chunking as an earlier entry); it adds no spend.
	Duplicate bool `json:"duplicate_release,omitempty"`
}

// releaseKey is the identity under which duplicate releases are detected.
func (e *LedgerEntry) releaseKey() string {
	return fmt.Sprintf("%s|%s|%d|%d", e.InputSHA, e.ParamsSHA, e.Seed, e.ChunkSize)
}

// Ledger is the on-disk session file: an append-only entry list.
type Ledger struct {
	Version int           `json:"version"`
	Entries []LedgerEntry `json:"entries"`
}

// LoadLedger reads the ledger at path; a missing file yields an empty
// ledger, anything unreadable or from another schema version is a metadata
// fault.
func LoadLedger(path string) (*Ledger, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Ledger{Version: LedgerVersion}, nil
	}
	if err != nil {
		return nil, faults.Wrap(faults.ErrBadMeta, fmt.Errorf("telemetry: ledger: %w", err))
	}
	l := &Ledger{}
	if err := json.Unmarshal(data, l); err != nil {
		return nil, faults.Wrap(faults.ErrBadMeta, fmt.Errorf("telemetry: decoding ledger %s: %w", path, err))
	}
	if l.Version != LedgerVersion {
		return nil, faults.Errorf(faults.ErrBadMeta, "telemetry: ledger %s has version %d, want %d", path, l.Version, LedgerVersion)
	}
	return l, nil
}

// Append records a run, sanitizing non-finite ε values (moved to Unbounded)
// and marking duplicates of already-recorded releases. The stored entry is
// returned.
func (l *Ledger) Append(e LedgerEntry) LedgerEntry {
	perAttr := make(map[string]float64, len(e.PerAttribute))
	composed := 0.0
	unbounded := append([]string(nil), e.Unbounded...)
	for name, eps := range e.PerAttribute {
		if math.IsInf(eps, 0) || math.IsNaN(eps) {
			unbounded = append(unbounded, name)
			continue
		}
		perAttr[name] = eps
		composed += eps
	}
	e.PerAttribute = perAttr
	e.Composed = composed
	e.Unbounded = unbounded
	e.Duplicate = false
	key := e.releaseKey()
	for i := range l.Entries {
		if l.Entries[i].releaseKey() == key {
			e.Duplicate = true
			break
		}
	}
	l.Entries = append(l.Entries, e)
	return e
}

// CumulativeFor sums the composed ε of every non-duplicate release of the
// given input — the total budget spent on that dataset across the session.
func (l *Ledger) CumulativeFor(inputSHA string) float64 {
	total := 0.0
	for i := range l.Entries {
		if l.Entries[i].InputSHA == inputSHA && !l.Entries[i].Duplicate {
			total += l.Entries[i].Composed
		}
	}
	return total
}

// UnboundedFor reports whether any non-duplicate release of the input
// included an attribute with unbounded ε.
func (l *Ledger) UnboundedFor(inputSHA string) bool {
	for i := range l.Entries {
		if l.Entries[i].InputSHA == inputSHA && !l.Entries[i].Duplicate && len(l.Entries[i].Unbounded) > 0 {
			return true
		}
	}
	return false
}

// WriteTo atomically persists the ledger.
func (l *Ledger) WriteTo(path string) error {
	return atomicio.WriteJSON(path, l)
}
