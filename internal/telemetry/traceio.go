package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"sync"

	"privateclean/internal/atomicio"
	"privateclean/internal/faults"
)

// TraceLine is one span as it appears in the durable JSONL trace sink: one
// JSON object per line, flat (parent/child structure is carried by the span
// and parent IDs, not by nesting), so the file can be appended to by
// successive process runs and grepped by trace ID.
type TraceLine struct {
	Trace      string         `json:"trace"`
	Span       string         `json:"span"`
	Parent     string         `json:"parent,omitempty"`
	Name       string         `json:"name"`
	Start      string         `json:"start"`
	DurationMS float64        `json:"duration_ms"`
	Open       bool           `json:"open,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Links      []string       `json:"links,omitempty"`
}

// TraceSink is the durable trace exporter behind -trace-out: an append-only
// JSONL file. A whole trace is written in a single Write call, so once the
// exporting process has acked (returned from End), the spans survive a
// kill -9 of the process; Close additionally fsyncs for power-loss
// durability. Appending (rather than snapshot-rewriting) means a client, a
// collector, and a restarted collector can all land spans in their own
// sinks without losing history — which is what makes a batch followable
// across a crash.
type TraceSink struct {
	mu sync.Mutex
	f  *os.File
}

// OpenTraceSink opens (creating if needed) the JSONL sink at path.
func OpenTraceSink(path string) (*TraceSink, error) {
	f, err := atomicio.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &TraceSink{f: f}, nil
}

// writeLines appends the lines as one contiguous write.
func (s *TraceSink) writeLines(lines []TraceLine) error {
	if s == nil || len(lines) == 0 {
		return nil
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, l := range lines {
		if err := enc.Encode(l); err != nil {
			return faults.Wrap(faults.ErrInternal, err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	if _, err := s.f.Write(buf.Bytes()); err != nil {
		return faults.Wrap(faults.ErrPartialWrite, err)
	}
	return nil
}

// Sync flushes the sink to stable storage.
func (s *TraceSink) Sync() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		return faults.Wrap(faults.ErrPartialWrite, err)
	}
	return nil
}

// Close syncs and closes the sink. Further exports become no-ops.
func (s *TraceSink) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return faults.Wrap(faults.ErrPartialWrite, err)
}

// ReadTraceLines decodes a JSONL trace sink. A final unparsable line is
// tolerated (a process killed mid-append can leave a torn tail — the same
// contract as the WAL's active segment); an unparsable line anywhere else is
// corruption and errors.
func ReadTraceLines(path string) ([]TraceLine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, faults.Wrap(faults.ErrBadInput, err)
	}
	defer f.Close()
	var out []TraceLine
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var pendingErr error
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if pendingErr != nil {
			// The bad line was not the last one: real corruption.
			return nil, pendingErr
		}
		var tl TraceLine
		if err := json.Unmarshal(line, &tl); err != nil {
			pendingErr = faults.Wrap(faults.ErrBadInput, err)
			continue
		}
		out = append(out, tl)
	}
	if err := sc.Err(); err != nil {
		return nil, faults.Wrap(faults.ErrBadInput, err)
	}
	return out, nil
}
