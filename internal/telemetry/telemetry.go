// Package telemetry is the privacy-safe observability subsystem for the
// PrivateClean pipeline:
//
//   - a zero-dependency metrics registry (atomic counters, gauges,
//     fixed-bucket histograms) with Prometheus text and expvar-style JSON
//     exposition (metrics.go);
//   - structured leveled logging on log/slog behind a redaction boundary
//     (log.go, redact.go): records may carry counts, durations, ε/p/b
//     parameters, chunk indices, file paths, schema names, and fault
//     taxonomy codes — never cell values or quarantined row contents;
//   - lightweight spans forming a per-run trace tree (span.go); and
//   - the ε-budget ledger accounting per-attribute and composed spend
//     across runs (ledger.go).
//
// The redaction boundary is structural, not advisory: every string that
// flows into a log attribute, metric label, or span attribute passes
// through a Redactor, and anything outside the safe vocabulary is replaced
// by a [redacted:xxxxxxxx] hash tag before it reaches any sink.
package telemetry

import (
	"log/slog"
	"sync/atomic"
)

// Set bundles the sinks one run reports through. Library code takes a *Set
// (or falls back to Default()); the CLIs build one from flags and install it
// as the process default.
type Set struct {
	Log     *slog.Logger
	Metrics *Registry
	Trace   *Tracer // nil disables span recording
	Redact  *Redactor
}

// Noop returns a Set that drops logs, records metrics into a throwaway
// registry, and records no spans. It is safe for concurrent use.
func Noop() *Set {
	red := NewRedactor()
	return &Set{Log: NopLogger(), Metrics: NewRegistry(red), Trace: nil, Redact: red}
}

var defaultSet atomic.Pointer[Set]

func init() { defaultSet.Store(Noop()) }

// Default returns the process-wide telemetry set (a noop set until a CLI
// installs one). Never nil.
func Default() *Set { return defaultSet.Load() }

// SetDefault installs s as the process-wide set; nil restores the noop set.
func SetDefault(s *Set) {
	if s == nil {
		s = Noop()
	}
	defaultSet.Store(s)
}
