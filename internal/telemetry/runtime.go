package telemetry

import (
	"runtime"
	"time"
)

// StartRuntimeMetrics samples Go runtime health into reg on a fixed tick:
// goroutine count, heap bytes, cumulative GC pause seconds, and GC cycles.
// extra (optional) runs on the same tick so callers can refresh their own
// gauges (e.g. the collector's open-WAL-segment count) without running a
// second ticker. One synchronous sample is taken before returning, so the
// gauges exist in the exposition even if the process exits within the first
// interval. The returned stop function halts the sampler; it is safe to
// call more than once.
func StartRuntimeMetrics(reg *Registry, every time.Duration, extra func()) (stop func()) {
	if reg == nil {
		if extra != nil {
			extra()
		}
		return func() {}
	}
	if every <= 0 {
		every = 10 * time.Second
	}
	goroutines := reg.Gauge("privateclean_go_goroutines", "Current number of goroutines.")
	heap := reg.Gauge("privateclean_go_heap_alloc_bytes", "Bytes of allocated heap objects.")
	gcPause := reg.Gauge("privateclean_go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause seconds.")
	gcs := reg.Gauge("privateclean_go_gcs_total", "Completed GC cycles.")
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heap.Set(float64(ms.HeapAlloc))
		gcPause.Set(float64(ms.PauseTotalNs) / 1e9)
		gcs.Set(float64(ms.NumGC))
		if extra != nil {
			extra()
		}
	}
	sample()
	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				sample()
			case <-done:
				return
			}
		}
	}()
	var once bool
	return func() {
		if once {
			return
		}
		once = true
		close(done)
		<-stopped
	}
}
