package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTraceIDGeneration(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		tr, sp := NewTraceID(), NewSpanID()
		if !ValidTraceID(tr) {
			t.Fatalf("NewTraceID() = %q, not a valid trace ID", tr)
		}
		if !ValidSpanID(sp) {
			t.Fatalf("NewSpanID() = %q, not a valid span ID", sp)
		}
		if seen[tr] || seen[sp] {
			t.Fatalf("duplicate generated ID")
		}
		seen[tr], seen[sp] = true, true
	}
}

func TestValidTraceIDShape(t *testing.T) {
	good := strings.Repeat("ab", 16)
	if !ValidTraceID(good) {
		t.Fatalf("ValidTraceID(%q) = false", good)
	}
	for _, bad := range []string{
		"",
		strings.Repeat("0", 32),              // all zeros
		strings.Repeat("A", 32),              // uppercase
		strings.Repeat("a", 31),              // short
		strings.Repeat("a", 33),              // long
		strings.Repeat("g", 32),              // non-hex
		strings.Repeat("a", 30) + "\x00\x00", // control bytes
	} {
		if ValidTraceID(bad) {
			t.Errorf("ValidTraceID(%q) = true", bad)
		}
	}
	if !ValidSpanID(strings.Repeat("cd", 8)) {
		t.Fatal("ValidSpanID rejected a good ID")
	}
	if ValidSpanID(strings.Repeat("0", 16)) || ValidSpanID(good) {
		t.Fatal("ValidSpanID accepted zeros or a trace-length ID")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	traceID, spanID := NewTraceID(), NewSpanID()
	h := FormatTraceparent(traceID, spanID)
	gotTrace, gotSpan, ok := ParseTraceparent(h)
	if !ok || gotTrace != traceID || gotSpan != spanID {
		t.Fatalf("ParseTraceparent(%q) = (%q, %q, %v)", h, gotTrace, gotSpan, ok)
	}
	for _, bad := range []string{
		"",
		"01-" + traceID + "-" + spanID + "-01", // wrong version
		"00-" + strings.Repeat("0", 32) + "-" + spanID + "-01",  // zero trace
		"00-" + traceID + "-" + strings.Repeat("0", 16) + "-01", // zero parent
		"00-" + strings.ToUpper(traceID) + "-" + spanID + "-01", // uppercase
		"00-" + traceID + "-" + spanID,                          // missing flags
		"00-" + traceID + "-" + spanID + "-zz",                  // bad flags
		"00-" + traceID + "-" + spanID + "-01-extra",            // trailing field
		"<script>alert(1)</script>",                             // junk
	} {
		if _, _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed context", bad)
		}
	}
}

func TestSpanTraceContext(t *testing.T) {
	tr := NewTracer(NewRedactor())
	root := tr.StartSpan(nil, "privatize")
	child := tr.StartSpan(root, "chunk")
	if !ValidTraceID(root.TraceID) || !ValidSpanID(root.SpanID) || root.ParentID != "" {
		t.Fatalf("root context: %+v", root)
	}
	if child.TraceID != root.TraceID || child.ParentID != root.SpanID {
		t.Fatalf("child does not inherit context: %+v", child)
	}
	if got := root.Traceparent(); got != FormatTraceparent(root.TraceID, root.SpanID) {
		t.Fatalf("Traceparent() = %q", got)
	}
	child.End()
	root.End()
}

func TestStartRemoteSpanAdoption(t *testing.T) {
	tr := NewTracer(NewRedactor())
	remoteTrace, remoteSpan := NewTraceID(), NewSpanID()

	sp := tr.StartRemoteSpan(remoteTrace, remoteSpan, "collect_report")
	if sp.TraceID != remoteTrace || sp.ParentID != remoteSpan {
		t.Fatalf("remote context not adopted: %+v", sp)
	}
	sp.End()

	// Malformed context falls back to a fresh local trace — hostile header
	// bytes never become a trace ID.
	forged := tr.StartRemoteSpan("DROP TABLE spans", "xx", "collect_report")
	if forged.TraceID == "DROP TABLE spans" || !ValidTraceID(forged.TraceID) || forged.ParentID != "" {
		t.Fatalf("malformed remote context leaked into span: %+v", forged)
	}
	forged.End()
}

func TestSpanLinkVetting(t *testing.T) {
	tr := NewTracer(NewRedactor())
	sp := tr.StartSpan(nil, "fold")
	good := NewTraceID()
	sp.Link(good)
	sp.Link("SECRET-cell-value-42")
	sp.End()
	if len(sp.Links) != 2 {
		t.Fatalf("links = %v", sp.Links)
	}
	if sp.Links[0] != good {
		t.Fatalf("valid link altered: %q", sp.Links[0])
	}
	if !strings.HasPrefix(sp.Links[1], "[redacted:") || strings.Contains(sp.Links[1], "SECRET") {
		t.Fatalf("invalid link not redacted: %q", sp.Links[1])
	}
}

func TestTracerRingBound(t *testing.T) {
	tr := NewTracer(NewRedactor())
	tr.ringCap = 4
	var first *Span
	for i := 0; i < 10; i++ {
		sp := tr.StartSpan(nil, "privatize")
		if i == 0 {
			first = sp
		}
		sp.End()
	}
	roots := tr.Roots()
	if len(roots) != 4 {
		t.Fatalf("ring holds %d roots, want 4", len(roots))
	}
	for _, r := range roots {
		if r == first {
			t.Fatal("oldest root not evicted from the ring")
		}
	}
	if got := tr.RecentJSON(); len(got) != 4 {
		t.Fatalf("RecentJSON() has %d entries, want 4", len(got))
	}
}

func TestTraceSinkDurableAppend(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.jsonl")

	// First process run: one completed trace with a child and a link.
	sink, err := OpenTraceSink(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(NewRedactor())
	tr.SetSink(sink)
	root := tr.StartSpan(nil, "report_batch", A("rows", 5))
	link := NewTraceID()
	child := tr.StartSpan(root, "wal_append")
	child.Link(link)
	child.End()
	root.End() // export happens here, before any Flush/Close
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	lines, err := ReadTraceLines(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2:\n%+v", len(lines), lines)
	}
	if lines[0].Name != "report_batch" || lines[0].Trace != root.TraceID || lines[0].Parent != "" {
		t.Fatalf("root line: %+v", lines[0])
	}
	if lines[1].Name != "wal_append" || lines[1].Trace != root.TraceID || lines[1].Parent != root.SpanID {
		t.Fatalf("child line: %+v", lines[1])
	}
	if len(lines[1].Links) != 1 || lines[1].Links[0] != link {
		t.Fatalf("child links: %v", lines[1].Links)
	}
	if rows, ok := lines[0].Attrs["rows"].(float64); !ok || rows != 5 {
		t.Fatalf("root attrs: %v", lines[0].Attrs)
	}

	// Second process run appends; the first run's spans survive.
	sink2, err := OpenTraceSink(path)
	if err != nil {
		t.Fatal(err)
	}
	tr2 := NewTracer(NewRedactor())
	tr2.SetSink(sink2)
	tr2.StartSpan(nil, "fold").End()
	if err := sink2.Close(); err != nil {
		t.Fatal(err)
	}
	lines, err = ReadTraceLines(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 || lines[2].Name != "fold" {
		t.Fatalf("after reopen: %+v", lines)
	}
}

func TestTracerFlushExportsOpenSpans(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.jsonl")
	sink, err := OpenTraceSink(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(NewRedactor())
	tr.SetSink(sink)
	tr.StartSpan(nil, "collect") // never ended: the server died mid-stage
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines, err := ReadTraceLines(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || lines[0].Name != "collect" || !lines[0].Open {
		t.Fatalf("flushed open span: %+v", lines)
	}
}

func TestReadTraceLinesTornTail(t *testing.T) {
	dir := t.TempDir()

	// A torn final line (kill -9 mid-append) is tolerated.
	torn := filepath.Join(dir, "torn.jsonl")
	content := `{"trace":"` + strings.Repeat("ab", 16) + `","span":"` + strings.Repeat("cd", 8) + `","name":"fold","start":"2026-01-01T00:00:00Z","duration_ms":1}` + "\n" + `{"trace":"ab`
	if err := os.WriteFile(torn, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	lines, err := ReadTraceLines(torn)
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	if len(lines) != 1 || lines[0].Name != "fold" {
		t.Fatalf("torn-tail read: %+v", lines)
	}

	// Corruption anywhere else errors.
	mid := filepath.Join(dir, "mid.jsonl")
	bad := `{"trace":"ab` + "\n" + `{"trace":"` + strings.Repeat("ab", 16) + `","span":"` + strings.Repeat("cd", 8) + `","name":"fold","start":"2026-01-01T00:00:00Z","duration_ms":1}` + "\n"
	if err := os.WriteFile(mid, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTraceLines(mid); err == nil {
		t.Fatal("mid-file corruption not reported")
	}
}
