package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"privateclean/internal/faults"
)

func TestRedactorVocabulary(t *testing.T) {
	red := NewRedactor("/tmp/data.csv")
	for _, safe := range []string{"privatize", "csv_load", "quarantine", "count", "/tmp/data.csv", ""} {
		if !red.Safe(safe) {
			t.Errorf("Safe(%q) = false, want true", safe)
		}
		if got := red.Clean(safe); got != safe {
			t.Errorf("Clean(%q) = %q, want unchanged", safe, got)
		}
	}
	secret := "Jane Doe, 555-0199"
	if red.Safe(secret) {
		t.Fatalf("Safe(%q) = true", secret)
	}
	got := red.Clean(secret)
	if strings.Contains(got, "Jane") || !strings.HasPrefix(got, "[redacted:") {
		t.Fatalf("Clean(%q) = %q, want a redaction tag", secret, got)
	}
	if red.Clean(secret) != got {
		t.Fatal("redaction tag is not stable")
	}
	red.Allow(secret)
	if red.Clean(secret) != secret {
		t.Fatal("Allow did not extend the vocabulary")
	}
}

func TestRedactorNilReceiver(t *testing.T) {
	var red *Redactor
	red.Allow("x") // must not panic
	if red.Safe("x") {
		t.Fatal("nil redactor allowed a non-baseline token")
	}
	if !red.Safe("privatize") {
		t.Fatal("nil redactor rejected a baseline token")
	}
	if got := red.Clean("secret"); !strings.HasPrefix(got, "[redacted:") {
		t.Fatalf("nil redactor Clean = %q", got)
	}
}

func TestFaultCode(t *testing.T) {
	cases := map[string]error{
		"ok":                 nil,
		"usage":              faults.Errorf(faults.ErrUsage, "x"),
		"bad_input":          faults.Errorf(faults.ErrBadInput, "x"),
		"corrupt_checkpoint": faults.Errorf(faults.ErrCorruptCheckpoint, "x"),
		"unclassified":       errors.New("plain"),
	}
	for want, err := range cases {
		if got := FaultCode(err); got != want {
			t.Errorf("FaultCode(%v) = %q, want %q", err, got, want)
		}
	}
}

func TestOpKind(t *testing.T) {
	if got := OpKind("transform(major:lower)"); got != "transform" {
		t.Fatalf("OpKind = %q", got)
	}
	if got := OpKind("trim"); got != "trim" {
		t.Fatalf("OpKind = %q", got)
	}
}

func TestLoggerRedactsJSON(t *testing.T) {
	var buf bytes.Buffer
	red := NewRedactor()
	log := NewLogger(&buf, slog.LevelDebug, "json", red)
	secretErr := faults.Errorf(faults.ErrBadInput, "row 3: cell %q unparsable", "SSN 123-45-6789")
	log.Info("csv load", "rows", 42, "policy", "quarantine", "cell", "SSN 123-45-6789", ErrAttr(secretErr))
	out := buf.String()
	if strings.Contains(out, "123-45-6789") {
		t.Fatalf("secret leaked into log output: %s", out)
	}
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log output is not JSON: %v\n%s", err, out)
	}
	if rec["msg"] != "csv load" || rec["rows"] != float64(42) || rec["policy"] != "quarantine" {
		t.Fatalf("unexpected record: %v", rec)
	}
	if cell, _ := rec["cell"].(string); !strings.HasPrefix(cell, "[redacted:") {
		t.Fatalf("cell attr not redacted: %v", rec["cell"])
	}
	if errTok, _ := rec["err"].(string); !strings.HasPrefix(errTok, "bad_input:") {
		t.Fatalf("err attr not tokenized: %v", rec["err"])
	}
}

func TestLoggerLevelGate(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, slog.LevelWarn, "text", NewRedactor())
	log.Info("hidden")
	log.Warn("shown")
	out := buf.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "shown") {
		t.Fatalf("level gate wrong: %s", out)
	}
}

func TestParseLevelAndFormat(t *testing.T) {
	if _, err := ParseLevel("verbose"); faults.Kind(err) != faults.ErrUsage {
		t.Fatalf("ParseLevel fault = %v", err)
	}
	if _, err := ParseFormat("yaml"); faults.Kind(err) != faults.ErrUsage {
		t.Fatalf("ParseFormat fault = %v", err)
	}
	if lvl, err := ParseLevel(""); err != nil || lvl != slog.LevelWarn {
		t.Fatalf("default level = %v, %v", lvl, err)
	}
}

func TestNopLoggerDiscards(t *testing.T) {
	// Must not panic and must report disabled at every level.
	log := NopLogger()
	log.Error("dropped")
	if log.Enabled(context.Background(), slog.LevelError) {
		t.Fatal("NopLogger claims to be enabled")
	}
}

func TestRegistryPrometheus(t *testing.T) {
	reg := NewRegistry(NewRedactor())
	reg.Counter("pc_rows_total", "Rows.", L("policy", "skip")).Add(5)
	reg.Counter("pc_rows_total", "Rows.", L("policy", "skip")).Inc()
	reg.Gauge("pc_eps", "Epsilon.").Set(1.25)
	h := reg.Histogram("pc_lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP pc_rows_total Rows.",
		"# TYPE pc_rows_total counter",
		`pc_rows_total{policy="skip"} 6`,
		"# TYPE pc_eps gauge",
		"pc_eps 1.25",
		"# TYPE pc_lat_seconds histogram",
		`pc_lat_seconds_bucket{le="0.1"} 1`,
		`pc_lat_seconds_bucket{le="1"} 2`,
		`pc_lat_seconds_bucket{le="+Inf"} 3`,
		"pc_lat_seconds_sum 5.55",
		"pc_lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryLabelRedaction(t *testing.T) {
	reg := NewRegistry(NewRedactor())
	reg.Counter("pc_bad", "Bad.", L("value", "alice@example.com")).Inc()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "alice@example.com") {
		t.Fatalf("label value leaked: %s", buf.String())
	}
	if !strings.Contains(buf.String(), "[redacted:") {
		t.Fatalf("label value not redacted: %s", buf.String())
	}
}

func TestRegistryCounterGuards(t *testing.T) {
	reg := NewRegistry(nil)
	c := reg.Counter("pc_guard_total", "")
	c.Add(-3)
	c.Add(math.Inf(1))
	c.Add(math.NaN())
	c.Add(2)
	if c.Value() != 2 {
		t.Fatalf("counter = %v, want 2", c.Value())
	}
	h := reg.Histogram("pc_guard_hist", "", []float64{1})
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Fatal("histogram counted a NaN observation")
	}
}

func TestRegistryTypeClashPanics(t *testing.T) {
	reg := NewRegistry(nil)
	reg.Counter("pc_clash", "")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on type clash")
		}
	}()
	reg.Gauge("pc_clash", "")
}

func TestRegistrySnapshotTo(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry(NewRedactor())
	reg.Counter("pc_x_total", "X.").Inc()

	prom := filepath.Join(dir, "m.prom")
	if err := reg.SnapshotTo(prom); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(prom)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "pc_x_total 1") {
		t.Fatalf("prom snapshot: %s", data)
	}

	jsonPath := filepath.Join(dir, "m.json")
	if err := reg.SnapshotTo(jsonPath); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	if err := json.Unmarshal(data, &vars); err != nil {
		t.Fatalf("expvar snapshot is not JSON: %v\n%s", err, data)
	}
	if vars["pc_x_total"] != float64(1) {
		t.Fatalf("expvar snapshot: %v", vars)
	}
}

func TestTracerTree(t *testing.T) {
	red := NewRedactor("in.csv")
	tr := NewTracer(red)
	root := tr.StartSpan(nil, "privatize", A("in", "in.csv"), A("cell", "secret-value"))
	child := tr.StartSpan(root, "csv_load", A("rows", 10))
	child.End()
	root.Set("err", errors.New("boom secret-value"))
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "secret-value") {
		t.Fatalf("span attrs leaked: %s", out)
	}
	var trees []struct {
		Name     string         `json:"name"`
		Attrs    map[string]any `json:"attrs"`
		Children []struct {
			Name string `json:"name"`
		} `json:"children"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trees); err != nil {
		t.Fatal(err)
	}
	if len(trees) != 1 || trees[0].Name != "privatize" {
		t.Fatalf("trace roots: %v", trees)
	}
	if trees[0].Attrs["in"] != "in.csv" {
		t.Fatalf("allowed path was redacted: %v", trees[0].Attrs)
	}
	if len(trees[0].Children) != 1 || trees[0].Children[0].Name != "csv_load" {
		t.Fatalf("trace children: %v", trees[0].Children)
	}
	text := tr.Text()
	if !strings.Contains(text, "privatize") || !strings.Contains(text, "  csv_load") {
		t.Fatalf("text outline: %q", text)
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan(nil, "x", A("k", "v"))
	if sp != nil {
		t.Fatal("nil tracer returned a live span")
	}
	sp.Set("k", 1) // all must be no-ops, not panics
	sp.End()
	if got := tr.Roots(); got != nil {
		t.Fatalf("Roots = %v", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil || buf.String() != "[]\n" {
		t.Fatalf("nil WriteJSON = %q, %v", buf.String(), err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if sp.Traceparent() != "" || sp.Trace() != "" {
		t.Fatal("nil span carries trace context")
	}
	sp.Link("deadbeefdeadbeefdeadbeefdeadbeef")
	if got := tr.RecentJSON(); got != nil {
		t.Fatalf("RecentJSON = %v", got)
	}
}

func TestLedgerAppendAndCumulative(t *testing.T) {
	led := &Ledger{Version: LedgerVersion}
	base := LedgerEntry{
		Time:      time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC).Format(time.RFC3339),
		InputSHA:  "aaa",
		ParamsSHA: "ppp",
		Seed:      1,
		ChunkSize: 128,
		Rows:      600,
		PerAttribute: map[string]float64{
			"major":  2.0,
			"salary": 0.5,
		},
	}
	e1 := led.Append(base)
	if e1.Composed != 2.5 || e1.Duplicate {
		t.Fatalf("first release: %+v", e1)
	}

	// Byte-identical re-release: duplicate, no new spend.
	e2 := led.Append(base)
	if !e2.Duplicate {
		t.Fatal("identical release not marked duplicate")
	}
	if got := led.CumulativeFor("aaa"); got != 2.5 {
		t.Fatalf("cumulative after duplicate = %v, want 2.5", got)
	}

	// New seed: fresh randomness, composes under Theorem 1.
	fresh := base
	fresh.Seed = 2
	if e3 := led.Append(fresh); e3.Duplicate {
		t.Fatal("new-seed release marked duplicate")
	}
	if got := led.CumulativeFor("aaa"); got != 5.0 {
		t.Fatalf("cumulative after second release = %v, want 5.0", got)
	}
	if led.CumulativeFor("other") != 0 {
		t.Fatal("cumulative leaked across inputs")
	}
}

func TestLedgerUnboundedSanitized(t *testing.T) {
	led := &Ledger{Version: LedgerVersion}
	e := led.Append(LedgerEntry{
		InputSHA:  "aaa",
		ParamsSHA: "qqq",
		Seed:      1,
		PerAttribute: map[string]float64{
			"bounded": 1.5,
			"open":    math.Inf(1),
		},
	})
	if e.Composed != 1.5 {
		t.Fatalf("composed = %v", e.Composed)
	}
	if len(e.Unbounded) != 1 || e.Unbounded[0] != "open" {
		t.Fatalf("unbounded = %v", e.Unbounded)
	}
	if _, ok := e.PerAttribute["open"]; ok {
		t.Fatal("unbounded attr kept a numeric epsilon")
	}
	if !led.UnboundedFor("aaa") {
		t.Fatal("UnboundedFor missed the open attribute")
	}
	// The sanitized entry must round-trip through JSON (no +Inf).
	if _, err := json.Marshal(led); err != nil {
		t.Fatalf("ledger not JSON-encodable: %v", err)
	}
}

func TestLedgerLoadWriteRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.csv"+LedgerFileSuffix)

	led, err := LoadLedger(path)
	if err != nil {
		t.Fatalf("missing ledger should load empty: %v", err)
	}
	led.Append(LedgerEntry{InputSHA: "aaa", ParamsSHA: "p", Seed: 1, PerAttribute: map[string]float64{"a": 1}})
	if err := led.WriteTo(path); err != nil {
		t.Fatal(err)
	}
	again, err := LoadLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Entries) != 1 || again.CumulativeFor("aaa") != 1 {
		t.Fatalf("round trip: %+v", again)
	}

	// Corrupt and wrong-version ledgers are metadata faults.
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLedger(path); faults.Kind(err) != faults.ErrBadMeta {
		t.Fatalf("corrupt ledger fault = %v", err)
	}
	if err := os.WriteFile(path, []byte(`{"version":99,"entries":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLedger(path); faults.Kind(err) != faults.ErrBadMeta {
		t.Fatalf("wrong-version fault = %v", err)
	}
}

func TestDefaultSetIsNoop(t *testing.T) {
	s := Default()
	if s == nil || s.Log == nil || s.Metrics == nil || s.Redact == nil {
		t.Fatalf("Default() = %+v", s)
	}
	// Using the noop set must be safe end to end.
	s.Log.Info("dropped")
	s.Metrics.Counter("pc_noop_total", "").Inc()
	sp := s.Trace.StartSpan(nil, "x")
	sp.End()

	installed := &Set{Log: NopLogger(), Metrics: NewRegistry(nil), Trace: NewTracer(nil), Redact: NewRedactor()}
	SetDefault(installed)
	if Default() != installed {
		t.Fatal("SetDefault did not install")
	}
	SetDefault(nil)
	if Default() == installed || Default() == nil {
		t.Fatal("SetDefault(nil) did not restore a noop set")
	}
}
