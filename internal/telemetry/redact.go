package telemetry

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"sync"

	"privateclean/internal/faults"
)

// Redactor is the privacy boundary for every telemetry sink. A string may
// appear verbatim in a log record, metric label, or span attribute only if
// it is in the safe vocabulary: the built-in baseline (stage names, policy
// names, fault codes — things the code itself chose) plus tokens explicitly
// allowed at runtime (file paths and attribute names, which are operator
// configuration and schema metadata, not data). Everything else — in
// particular cell values and quarantined row contents — is replaced by a
// stable [redacted:xxxxxxxx] hash tag, which correlates repeated occurrences
// without revealing the value.
type Redactor struct {
	mu   sync.RWMutex
	safe map[string]struct{}
}

// NewRedactor builds a redactor whose safe vocabulary is the baseline plus
// the given tokens.
func NewRedactor(tokens ...string) *Redactor {
	r := &Redactor{safe: make(map[string]struct{}, len(tokens))}
	r.Allow(tokens...)
	return r
}

// Allow adds tokens to the safe vocabulary. Callers own the judgment that a
// token is mechanism configuration rather than data: the CLI allows the file
// paths it was invoked with, and the CSV loader allows header names once the
// schema is known.
func (r *Redactor) Allow(tokens ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range tokens {
		r.safe[t] = struct{}{}
	}
}

// Safe reports whether s may appear verbatim in telemetry output.
func (r *Redactor) Safe(s string) bool {
	if _, ok := baseline[s]; ok {
		return true
	}
	if r == nil {
		return false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.safe[s]
	return ok
}

// Clean returns s unchanged when it is safe and its redaction tag otherwise.
func (r *Redactor) Clean(s string) string {
	if r.Safe(s) {
		return s
	}
	return "[redacted:" + hash8(s) + "]"
}

// hash8 is the stable 8-hex-digit correlation tag of a redacted string.
func hash8(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:4])
}

// FaultCode maps an error to the short taxonomy code telemetry carries in
// place of the error text (which may embed cell values from parse failures).
func FaultCode(err error) string {
	if err == nil {
		return "ok"
	}
	switch faults.Kind(err) {
	case faults.ErrUsage:
		return "usage"
	case faults.ErrBadInput:
		return "bad_input"
	case faults.ErrBadMeta:
		return "bad_meta"
	case faults.ErrBadParams:
		return "bad_params"
	case faults.ErrBadQuery:
		return "bad_query"
	case faults.ErrCorruptCheckpoint:
		return "corrupt_checkpoint"
	case faults.ErrPartialWrite:
		return "partial_write"
	case faults.ErrInternal:
		return "internal"
	default:
		return "unclassified"
	}
}

// baseline is the vocabulary the code itself emits: pipeline stage and span
// names, CLI subcommands and flag values, row-error policies and reason
// codes, fault taxonomy codes, aggregate kinds, and cleaning-op kinds. None
// of these can carry data — they are all string literals in this repository.
var baseline = buildBaseline(
	// span / stage names
	"privatize", "csv_load", "chunk", "checkpoint_read", "checkpoint_write",
	"resume_truncate", "rebuild", "finalize", "ledger_append",
	"clean", "clean_op", "write_view", "provenance_save",
	"query_parse", "query_estimate", "explain", "describe", "tune", "minsize", "epsilon",
	// distributed-collection span names and pipeline stages
	"client_randomize", "report_batch", "collect_report", "wal_append",
	"fold", "compact", "serve_query",
	// row-error policies and malformed-row reason codes
	"fail", "skip", "quarantine", "arity", "syntax", "bad_numeric",
	// fault taxonomy codes
	"ok", "usage", "bad_input", "bad_meta", "bad_params", "bad_query",
	"corrupt_checkpoint", "partial_write", "internal", "unclassified",
	// log levels and formats
	"debug", "info", "warn", "error", "text", "json",
	// aggregate kinds
	"count", "sum", "avg", "median", "var", "std",
	// cleaning-op kinds (the part of Op.Name before the parenthesis)
	"transform", "merge", "extract", "find-replace", "dictionary-merge",
	"nullify-invalid", "fd-repair", "fd-impute", "md-repair",
	"regex-replace", "canonicalize", "trim", "transform-rows",
	// misc states
	"true", "false", "fresh", "resumed", "duplicate",
)

func buildBaseline(tokens ...string) map[string]struct{} {
	m := make(map[string]struct{}, len(tokens)+1)
	m[""] = struct{}{}
	for _, t := range tokens {
		m[t] = struct{}{}
	}
	return m
}

// OpKind extracts the vocabulary-safe kind of a cleaning-op name like
// "transform(major:lower)" — the part before the first parenthesis.
func OpKind(name string) string {
	if i := strings.IndexByte(name, '('); i >= 0 {
		return name[:i]
	}
	return name
}
