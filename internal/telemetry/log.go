package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"

	"privateclean/internal/faults"
)

// NewLogger builds the pipeline's structured logger: leveled slog output in
// text or JSON format, with every attribute value passed through the
// redaction boundary before it reaches the sink. Messages are code-authored
// literals and are emitted verbatim; values are where data can leak, so
// string (and stringified any) values are vetted, and error values are
// reduced to their fault-taxonomy code plus a correlation hash.
func NewLogger(w io.Writer, level slog.Level, format string, red *Redactor) *slog.Logger {
	opts := &slog.HandlerOptions{
		Level:       level,
		ReplaceAttr: redactAttr(red),
	}
	var h slog.Handler
	if format == "json" {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h)
}

// ParseLevel parses a -log-level flag value.
func ParseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, faults.Errorf(faults.ErrUsage, "telemetry: unknown log level %q (want debug, info, warn, or error)", s)
}

// ParseFormat validates a -log-format flag value.
func ParseFormat(s string) (string, error) {
	switch s {
	case "text", "":
		return "text", nil
	case "json":
		return "json", nil
	}
	return "", faults.Errorf(faults.ErrUsage, "telemetry: unknown log format %q (want text or json)", s)
}

// redactAttr is the slog ReplaceAttr hook enforcing the redaction boundary.
func redactAttr(red *Redactor) func([]string, slog.Attr) slog.Attr {
	return func(groups []string, a slog.Attr) slog.Attr {
		if len(groups) == 0 {
			switch a.Key {
			case slog.TimeKey, slog.LevelKey, slog.MessageKey, slog.SourceKey:
				return a
			}
		}
		a.Value = a.Value.Resolve()
		switch a.Value.Kind() {
		case slog.KindString:
			a.Value = slog.StringValue(red.Clean(a.Value.String()))
		case slog.KindAny:
			v := a.Value.Any()
			if err, ok := v.(error); ok {
				a.Value = slog.StringValue(errToken(err))
			} else {
				a.Value = slog.StringValue(red.Clean(fmt.Sprint(v)))
			}
		}
		return a
	}
}

// errToken renders an error as its taxonomy code plus a correlation hash of
// the full text — never the text itself, which may quote input cells.
func errToken(err error) string {
	return FaultCode(err) + ":" + hash8(err.Error())
}

// ErrAttr is the conventional way to attach an error to a log record. It
// carries the error value itself; the redaction boundary reduces it to the
// fault code (vocabulary-safe) plus a hash of the full message. (Attaching a
// pre-rendered token string instead would be re-redacted by the boundary,
// which cannot tell a token from data.)
func ErrAttr(err error) slog.Attr {
	return slog.Any("err", err)
}

// discardHandler drops every record without formatting it; Enabled is false
// at all levels, so arguments to disabled log calls are never materialized.
// (slog.DiscardHandler arrived after go1.22, hence the local copy.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// NopLogger returns a logger that discards everything at zero cost.
func NopLogger() *slog.Logger { return slog.New(discardHandler{}) }
