package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"privateclean/internal/atomicio"
	"privateclean/internal/faults"
)

// Registry is a zero-dependency metrics registry: atomic counters, gauges,
// and fixed-bucket histograms, exposable as Prometheus text format or
// expvar-style JSON and snapshottable to a file via internal/atomicio.
//
// Label values pass through the registry's redaction boundary when an
// instrument is created, so a label can never carry a cell value into an
// exposition — it is replaced by its redaction tag first.
type Registry struct {
	red  *Redactor
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry builds a registry vetting label values against red (nil means
// only the baseline vocabulary is safe).
func NewRegistry(red *Redactor) *Registry {
	return &Registry{red: red, fams: make(map[string]*family)}
}

// Label is one metric label pair.
type Label struct{ Key, Value string }

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// family groups every labeled instrument sharing one metric name.
type family struct {
	name, help, typ string
	insts           map[string]instrument // keyed by rendered label string
}

type instrument interface {
	// expo appends the Prometheus sample lines for this instrument.
	expo(w io.Writer, name, labels string)
	// jsonValue returns the expvar-style JSON value.
	jsonValue() any
}

var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// lookup returns (creating if needed) the instrument for name+labels,
// panicking on misuse (invalid name, type clash) — metric registration is
// code, not input, so a bug should fail loudly in tests.
func (reg *Registry) lookup(name, help, typ string, labels []Label, make func() instrument) instrument {
	if !metricNameRE.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	ls := reg.renderLabels(labels)
	reg.mu.Lock()
	defer reg.mu.Unlock()
	fam, ok := reg.fams[name]
	if !ok {
		fam = &family{name: name, help: help, typ: typ, insts: map[string]instrument{}}
		reg.fams[name] = fam
	}
	if fam.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, fam.typ, typ))
	}
	inst, ok := fam.insts[ls]
	if !ok {
		inst = make()
		fam.insts[ls] = inst
	}
	return inst
}

// renderLabels renders labels in sorted-key order with redacted values.
func (reg *Registry) renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", l.Key, reg.red.Clean(l.Value))
	}
	return sb.String()
}

// Counter returns the monotonically increasing counter for name+labels.
func (reg *Registry) Counter(name, help string, labels ...Label) *Counter {
	return reg.lookup(name, help, "counter", labels, func() instrument { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge for name+labels.
func (reg *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return reg.lookup(name, help, "gauge", labels, func() instrument { return &Gauge{} }).(*Gauge)
}

// Histogram returns the fixed-bucket histogram for name+labels. The buckets
// are upper bounds in increasing order; an implicit +Inf bucket is added.
// Bucket layout is fixed at first registration.
func (reg *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return reg.lookup(name, help, "histogram", labels, func() instrument { return newHistogram(buckets) }).(*Histogram)
}

// atomicFloat is a float64 updated with CAS on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value.
type Counter struct{ v atomicFloat }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds v; negative or non-finite increments are ignored (a counter must
// not go backwards, and an Inf/NaN increment would poison the series).
func (c *Counter) Add(v float64) {
	if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	c.v.Add(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.Load() }

func (c *Counter) expo(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(c.Value()))
}
func (c *Counter) jsonValue() any { return c.Value() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomicFloat }

// Set stores v.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add adds v.
func (g *Gauge) Add(v float64) { g.v.Add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

func (g *Gauge) expo(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(g.Value()))
}
func (g *Gauge) jsonValue() any { return g.Value() }

// Histogram counts observations into fixed buckets.
type Histogram struct {
	uppers []float64
	counts []atomic.Uint64 // len(uppers)+1; last bucket is +Inf
	sum    atomicFloat
	n      atomic.Uint64
}

func newHistogram(uppers []float64) *Histogram {
	us := append([]float64(nil), uppers...)
	sort.Float64s(us)
	return &Histogram{uppers: us, counts: make([]atomic.Uint64, len(us)+1)}
}

// Observe records one observation. NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	idx := sort.SearchFloat64s(h.uppers, v)
	h.counts[idx].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

func (h *Histogram) expo(w io.Writer, name, labels string) {
	cum := uint64(0)
	for i, upper := range h.uppers {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, formatFloat(upper)), cum)
	}
	cum += h.counts[len(h.uppers)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
}

func (h *Histogram) jsonValue() any {
	buckets := make(map[string]uint64, len(h.uppers)+1)
	for i, upper := range h.uppers {
		buckets[formatFloat(upper)] = h.counts[i].Load()
	}
	buckets["+Inf"] = h.counts[len(h.uppers)].Load()
	return map[string]any{"count": h.Count(), "sum": h.Sum(), "buckets": buckets}
}

// bucketLabels splices le="upper" into a rendered label string.
func bucketLabels(labels, le string) string {
	if labels == "{}" || labels == "" {
		return fmt.Sprintf(`{le=%q}`, le)
	}
	return labels[:len(labels)-1] + fmt.Sprintf(`,le=%q}`, le)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// DurationBuckets are the default histogram bounds, in seconds, for stage
// and chunk latencies (100µs .. 30s).
var DurationBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30}

// FreshnessBuckets are histogram bounds, in seconds, for end-to-end
// pipeline freshness (batch ack to checkpoint commit). Compaction cadences
// run from milliseconds (tests) to many minutes (production), so the range
// is wider and coarser than DurationBuckets.
var FreshnessBuckets = []float64{0.001, 0.01, 0.1, 0.5, 1, 5, 15, 60, 300, 900, 3600}

// RowBuckets are the default histogram bounds for per-chunk and per-load row
// counts.
var RowBuckets = []float64{1, 8, 64, 256, 512, 1024, 4096, 16384, 65536, 262144, 1048576}

// snapshot returns the families and their instruments in deterministic
// (sorted) order for exposition.
func (reg *Registry) snapshot() []*family {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	fams := make([]*family, 0, len(reg.fams))
	for _, f := range reg.fams {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE header per family, then one sample
// line per instrument, in deterministic order.
func (reg *Registry) WritePrometheus(w io.Writer) error {
	for _, fam := range reg.snapshot() {
		if fam.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam.name, fam.help); err != nil {
				return faults.Wrap(faults.ErrPartialWrite, err)
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam.name, fam.typ); err != nil {
			return faults.Wrap(faults.ErrPartialWrite, err)
		}
		keys := make([]string, 0, len(fam.insts))
		for k := range fam.insts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			labels := ""
			if k != "" {
				labels = "{" + k + "}"
			}
			fam.insts[k].expo(w, fam.name, labels)
		}
	}
	return nil
}

// WriteExpvar renders the registry as an expvar-style JSON object keyed by
// "name" or "name{labels}".
func (reg *Registry) WriteExpvar(w io.Writer) error {
	out := map[string]any{}
	for _, fam := range reg.snapshot() {
		for k, inst := range fam.insts {
			key := fam.name
			if k != "" {
				key += "{" + k + "}"
			}
			out[key] = inst.jsonValue()
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return faults.Wrap(faults.ErrInternal, err)
	}
	_, err = w.Write(append(data, '\n'))
	return faults.Wrap(faults.ErrPartialWrite, err)
}

// SnapshotTo writes the registry atomically to path: expvar JSON when the
// path ends in .json, Prometheus text format otherwise (.prom by
// convention).
func (reg *Registry) SnapshotTo(path string) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		if strings.HasSuffix(path, ".json") {
			return reg.WriteExpvar(w)
		}
		return reg.WritePrometheus(w)
	})
}
