package telemetry

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"privateclean/internal/faults"
)

// Tracer records spans for the pipeline stages: CSV load, per-chunk
// privatize, checkpoint I/O, resume truncation, cleaning, query estimation,
// and — since the collection pipeline became distributed — client batch
// randomization, report ingestion, and WAL compaction folds.
//
// Every span carries W3C-style trace context: a 16-byte trace ID shared by
// all spans of one logical operation (possibly across processes), an 8-byte
// span ID, and the parent's span ID. A span may additionally record *links*
// to other trace IDs, which is how an asynchronous compaction fold points
// back at the traces of the batches it folds without pretending they are its
// parents.
//
// Completed root spans are retained in a bounded in-memory ring (serving the
// /v1/tracez endpoints) and, when a sink is attached, exported as JSONL — so
// a long-running server neither grows without bound nor loses its trace
// history on restart.
//
// A nil *Tracer is the disabled tracer: StartSpan returns a nil *Span, and
// every *Span method is nil-safe, so instrumented code needs no branching.
type Tracer struct {
	red     *Redactor
	ringCap int

	mu   sync.Mutex
	open []*Span // started, not yet ended root spans
	ring []*Span // completed root spans, oldest first, bounded by ringCap
	sink *TraceSink
}

// DefaultRingCap bounds the completed-trace ring.
const DefaultRingCap = 128

// NewTracer builds an enabled tracer vetting span attributes against red.
func NewTracer(red *Redactor) *Tracer {
	return &Tracer{red: red, ringCap: DefaultRingCap}
}

// SetSink attaches the durable JSONL exporter: every root span is written to
// it when it ends (and on Flush). Attach before instrumented code runs.
func (t *Tracer) SetSink(s *TraceSink) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sink = s
}

// idFallback feeds hex IDs if crypto/rand ever fails (it cannot on supported
// platforms): tracing degrades to counter IDs rather than panicking.
var idFallback atomic.Uint64

func newHexID(nbytes int) string {
	buf := make([]byte, nbytes)
	if _, err := crand.Read(buf); err != nil {
		binary.LittleEndian.PutUint64(buf, idFallback.Add(1))
	}
	const hexdigits = "0123456789abcdef"
	out := make([]byte, 2*nbytes)
	for i, b := range buf {
		out[2*i] = hexdigits[b>>4]
		out[2*i+1] = hexdigits[b&0xf]
	}
	return string(out)
}

// NewTraceID returns a fresh random 32-hex-digit trace ID.
func NewTraceID() string { return newHexID(16) }

// NewSpanID returns a fresh random 16-hex-digit span ID.
func NewSpanID() string { return newHexID(8) }

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ValidTraceID reports whether s is a well-formed, nonzero trace ID. The
// shape check is the injection guard: trace IDs arrive over the network
// (traceparent headers, batch fields), and only 32 lowercase hex digits may
// pass into spans, links, or sinks verbatim.
func ValidTraceID(s string) bool {
	return len(s) == 32 && isLowerHex(s) && s != strings.Repeat("0", 32)
}

// ValidSpanID is ValidTraceID for 16-hex-digit span IDs.
func ValidSpanID(s string) bool {
	return len(s) == 16 && isLowerHex(s) && s != strings.Repeat("0", 16)
}

// FormatTraceparent renders a W3C traceparent header value (version 00,
// sampled flag set).
func FormatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// ParseTraceparent reads a traceparent header value strictly: version 00,
// 32-hex trace ID, 16-hex parent span ID, 2-hex flags. Anything else is
// rejected, so arbitrary header bytes can never ride a trace context into a
// telemetry sink.
func ParseTraceparent(h string) (traceID, parentSpanID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) != 4 || parts[0] != "00" {
		return "", "", false
	}
	if !ValidTraceID(parts[1]) || !ValidSpanID(parts[2]) {
		return "", "", false
	}
	if len(parts[3]) != 2 || !isLowerHex(parts[3]) {
		return "", "", false
	}
	return parts[1], parts[2], true
}

// Attr is one span attribute.
type Attr struct {
	Key   string
	Value any
}

// A builds an Attr.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// Span is one timed stage. Fields are exported for rendering; mutate only
// through the methods.
type Span struct {
	t      *Tracer
	parent *Span

	Name string
	// TraceID/SpanID/ParentID are the W3C-style trace context. ParentID is
	// empty for a root span with no remote parent.
	TraceID  string
	SpanID   string
	ParentID string
	Begin    time.Time
	Finish   time.Time
	Attrs    []Attr
	// Links are trace IDs of causally related but non-parent traces (e.g.
	// the batches a compaction fold covers).
	Links    []string
	Children []*Span
}

// StartSpan opens a span under parent (nil parent means a new root with a
// fresh trace ID) and returns it; call End when the stage finishes. String
// attribute values are vetted through the tracer's redactor at record time,
// so raw data never lives in the trace.
func (t *Tracer) StartSpan(parent *Span, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{t: t, parent: parent, Name: name, Begin: time.Now(),
		SpanID: NewSpanID(), Attrs: t.vet(attrs)}
	t.mu.Lock()
	defer t.mu.Unlock()
	if parent == nil {
		sp.TraceID = NewTraceID()
		t.open = append(t.open, sp)
	} else {
		sp.TraceID = parent.TraceID
		sp.ParentID = parent.SpanID
		parent.Children = append(parent.Children, sp)
	}
	return sp
}

// StartRemoteSpan opens a root span that continues a trace started in
// another process: it adopts the given trace ID and records the remote
// parent span ID. Invalid context (wrong shape, all zeros) falls back to a
// fresh local trace, so a malformed or hostile traceparent degrades to a new
// root instead of injecting bytes into the trace.
func (t *Tracer) StartRemoteSpan(traceID, parentSpanID, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	sp := t.StartSpan(nil, name, attrs...)
	t.mu.Lock()
	defer t.mu.Unlock()
	if ValidTraceID(traceID) {
		sp.TraceID = traceID
		if ValidSpanID(parentSpanID) {
			sp.ParentID = parentSpanID
		}
	}
	return sp
}

// Traceparent renders this span's context as a traceparent header value for
// propagation to the next hop; empty for a nil span.
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return FormatTraceparent(s.TraceID, s.SpanID)
}

// Trace returns the span's trace ID; empty for a nil span.
func (s *Span) Trace() string {
	if s == nil {
		return ""
	}
	return s.TraceID
}

// Link records a causal link to another trace. The ID must be a well-formed
// trace ID; anything else is replaced by its redaction tag — link values can
// originate in on-disk batch records, and a corrupted or forged field must
// not pass into sinks verbatim.
func (s *Span) Link(traceID string) {
	if s == nil {
		return
	}
	if !ValidTraceID(traceID) {
		traceID = s.t.red.Clean(traceID)
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	s.Links = append(s.Links, traceID)
}

// End closes the span. Ending twice keeps the first finish time. Ending a
// root span moves it from the open set into the completed ring and exports
// it to the attached sink.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	if !s.Finish.IsZero() {
		t.mu.Unlock()
		return
	}
	s.Finish = time.Now()
	var sink *TraceSink
	var lines []TraceLine
	if s.parent == nil {
		for i, o := range t.open {
			if o == s {
				t.open = append(t.open[:i], t.open[i+1:]...)
				break
			}
		}
		t.ring = append(t.ring, s)
		if len(t.ring) > t.ringCap {
			t.ring = t.ring[len(t.ring)-t.ringCap:]
		}
		if t.sink != nil {
			sink, lines = t.sink, s.toLines(s.Finish)
		}
	}
	t.mu.Unlock()
	// File I/O happens outside the tracer lock; the sink serializes itself.
	if sink != nil {
		_ = sink.writeLines(lines)
	}
}

// Set attaches an attribute to an open span (vetted like StartSpan's).
func (s *Span) Set(key string, value any) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	s.Attrs = append(s.Attrs, s.t.vetOne(Attr{Key: key, Value: value}))
}

// vet redacts string-valued attributes; errors are reduced to fault codes.
func (t *Tracer) vet(attrs []Attr) []Attr {
	if len(attrs) == 0 {
		return nil
	}
	out := make([]Attr, len(attrs))
	for i, a := range attrs {
		out[i] = t.vetOne(a)
	}
	return out
}

func (t *Tracer) vetOne(a Attr) Attr {
	switch v := a.Value.(type) {
	case string:
		a.Value = t.red.Clean(v)
	case error:
		a.Value = errToken(v)
	case int, int64, uint64, float64, bool, time.Duration:
		// numeric/boolean values carry no cells
	default:
		a.Value = t.red.Clean(fmt.Sprint(v))
	}
	return a
}

// Roots returns the retained root spans: the completed ring (oldest first)
// followed by the still-open roots.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, 0, len(t.ring)+len(t.open))
	out = append(out, t.ring...)
	return append(out, t.open...)
}

// Flush exports every still-open root span to the sink (duration measured to
// now, marked open) and syncs it, so a run that dies mid-stage still leaves
// its spans in the JSONL file. Completed roots were already exported when
// they ended.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	sink := t.sink
	var lines []TraceLine
	if sink != nil {
		now := time.Now()
		for _, o := range t.open {
			lines = append(lines, o.toLines(now)...)
		}
	}
	t.mu.Unlock()
	if sink == nil {
		return nil
	}
	if len(lines) > 0 {
		if err := sink.writeLines(lines); err != nil {
			return err
		}
	}
	return sink.Sync()
}

// spanJSON is the serialized span shape.
type spanJSON struct {
	Name       string         `json:"name"`
	Trace      string         `json:"trace,omitempty"`
	Span       string         `json:"span,omitempty"`
	Parent     string         `json:"parent,omitempty"`
	Start      string         `json:"start"`
	DurationMS float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Links      []string       `json:"links,omitempty"`
	Children   []spanJSON     `json:"children,omitempty"`
}

func (s *Span) toJSON() spanJSON {
	end := s.Finish
	if end.IsZero() {
		end = s.Begin
	}
	out := spanJSON{
		Name:       s.Name,
		Trace:      s.TraceID,
		Span:       s.SpanID,
		Parent:     s.ParentID,
		Start:      s.Begin.UTC().Format(time.RFC3339Nano),
		DurationMS: float64(end.Sub(s.Begin)) / float64(time.Millisecond),
		Links:      s.Links,
	}
	if len(s.Attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.Attrs))
		for _, a := range s.Attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.Children {
		out.Children = append(out.Children, c.toJSON())
	}
	return out
}

// toLines flattens the span tree into exportable JSONL records. Open spans
// (no finish yet) measure their duration to now and are marked open. Callers
// hold the tracer lock.
func (s *Span) toLines(now time.Time) []TraceLine {
	end, open := s.Finish, false
	if end.IsZero() {
		end, open = now, true
	}
	line := TraceLine{
		Trace:      s.TraceID,
		Span:       s.SpanID,
		Parent:     s.ParentID,
		Name:       s.Name,
		Start:      s.Begin.UTC().Format(time.RFC3339Nano),
		DurationMS: float64(end.Sub(s.Begin)) / float64(time.Millisecond),
		Open:       open,
		Links:      s.Links,
	}
	if len(s.Attrs) > 0 {
		line.Attrs = make(map[string]any, len(s.Attrs))
		for _, a := range s.Attrs {
			line.Attrs[a.Key] = a.Value
		}
	}
	out := []TraceLine{line}
	for _, c := range s.Children {
		out = append(out, c.toLines(now)...)
	}
	return out
}

// RecentJSON returns the serialized completed-trace ring, oldest first — the
// /v1/tracez payload.
func (t *Tracer) RecentJSON() []any {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]any, 0, len(t.ring))
	for _, r := range t.ring {
		out = append(out, r.toJSON())
	}
	return out
}

// WriteJSON renders the retained trace trees (completed ring then open
// roots) as a JSON array.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	t.mu.Lock()
	trees := make([]spanJSON, 0, len(t.ring)+len(t.open))
	for _, r := range t.ring {
		trees = append(trees, r.toJSON())
	}
	for _, r := range t.open {
		trees = append(trees, r.toJSON())
	}
	t.mu.Unlock()
	data, err := json.MarshalIndent(trees, "", "  ")
	if err != nil {
		return faults.Wrap(faults.ErrInternal, err)
	}
	_, err = w.Write(append(data, '\n'))
	return faults.Wrap(faults.ErrPartialWrite, err)
}

// Text renders the retained trace trees as an indented text outline, e.g.
//
//	privatize 12.3ms in=data.csv
//	  csv_load 2.1ms rows=600
//	  chunk 1.0ms index=0
func (t *Tracer) Text() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var sb strings.Builder
	for _, r := range t.ring {
		r.text(&sb, 0)
	}
	for _, r := range t.open {
		r.text(&sb, 0)
	}
	return sb.String()
}

func (s *Span) text(sb *strings.Builder, depth int) {
	end := s.Finish
	if end.IsZero() {
		end = s.Begin
	}
	fmt.Fprintf(sb, "%s%s %s", strings.Repeat("  ", depth), s.Name, end.Sub(s.Begin).Round(time.Microsecond))
	for _, a := range s.Attrs {
		fmt.Fprintf(sb, " %s=%v", a.Key, a.Value)
	}
	sb.WriteByte('\n')
	for _, c := range s.Children {
		c.text(sb, depth+1)
	}
}
