package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"privateclean/internal/atomicio"
	"privateclean/internal/faults"
)

// Tracer records lightweight spans for the pipeline stages: CSV load,
// per-chunk privatize, checkpoint I/O, resume truncation, cleaning, query
// estimation. Spans form a tree (a span started with a parent becomes its
// child) renderable as indented text or JSON.
//
// A nil *Tracer is the disabled tracer: StartSpan returns a nil *Span, and
// every *Span method is nil-safe, so instrumented code needs no branching.
type Tracer struct {
	red   *Redactor
	mu    sync.Mutex
	roots []*Span
}

// NewTracer builds an enabled tracer vetting span attributes against red.
func NewTracer(red *Redactor) *Tracer {
	return &Tracer{red: red}
}

// Attr is one span attribute.
type Attr struct {
	Key   string
	Value any
}

// A builds an Attr.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// Span is one timed stage. Fields are exported for rendering; mutate only
// through the methods.
type Span struct {
	t        *Tracer
	Name     string
	Begin    time.Time
	Finish   time.Time
	Attrs    []Attr
	Children []*Span
}

// StartSpan opens a span under parent (nil parent means a new root) and
// returns it; call End when the stage finishes. String attribute values are
// vetted through the tracer's redactor at record time, so raw data never
// lives in the trace.
func (t *Tracer) StartSpan(parent *Span, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{t: t, Name: name, Begin: time.Now(), Attrs: t.vet(attrs)}
	t.mu.Lock()
	defer t.mu.Unlock()
	if parent == nil {
		t.roots = append(t.roots, sp)
	} else {
		parent.Children = append(parent.Children, sp)
	}
	return sp
}

// End closes the span. Ending twice keeps the first finish time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if s.Finish.IsZero() {
		s.Finish = time.Now()
	}
}

// Set attaches an attribute to an open span (vetted like StartSpan's).
func (s *Span) Set(key string, value any) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	s.Attrs = append(s.Attrs, s.t.vetOne(Attr{Key: key, Value: value}))
}

// vet redacts string-valued attributes; errors are reduced to fault codes.
func (t *Tracer) vet(attrs []Attr) []Attr {
	if len(attrs) == 0 {
		return nil
	}
	out := make([]Attr, len(attrs))
	for i, a := range attrs {
		out[i] = t.vetOne(a)
	}
	return out
}

func (t *Tracer) vetOne(a Attr) Attr {
	switch v := a.Value.(type) {
	case string:
		a.Value = t.red.Clean(v)
	case error:
		a.Value = errToken(v)
	case int, int64, uint64, float64, bool, time.Duration:
		// numeric/boolean values carry no cells
	default:
		a.Value = t.red.Clean(fmt.Sprint(v))
	}
	return a
}

// Roots returns the recorded root spans.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// spanJSON is the serialized span shape.
type spanJSON struct {
	Name       string         `json:"name"`
	Start      string         `json:"start"`
	DurationMS float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []spanJSON     `json:"children,omitempty"`
}

func (s *Span) toJSON() spanJSON {
	end := s.Finish
	if end.IsZero() {
		end = s.Begin
	}
	out := spanJSON{
		Name:       s.Name,
		Start:      s.Begin.UTC().Format(time.RFC3339Nano),
		DurationMS: float64(end.Sub(s.Begin)) / float64(time.Millisecond),
	}
	if len(s.Attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.Attrs))
		for _, a := range s.Attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.Children {
		out.Children = append(out.Children, c.toJSON())
	}
	return out
}

// WriteJSON renders the trace tree as a JSON array of root spans.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	t.mu.Lock()
	trees := make([]spanJSON, 0, len(t.roots))
	for _, r := range t.roots {
		trees = append(trees, r.toJSON())
	}
	t.mu.Unlock()
	data, err := json.MarshalIndent(trees, "", "  ")
	if err != nil {
		return faults.Wrap(faults.ErrInternal, err)
	}
	_, err = w.Write(append(data, '\n'))
	return faults.Wrap(faults.ErrPartialWrite, err)
}

// Text renders the trace tree as an indented text outline, e.g.
//
//	privatize 12.3ms in=data.csv
//	  csv_load 2.1ms rows=600
//	  chunk 1.0ms index=0
func (t *Tracer) Text() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var sb strings.Builder
	for _, r := range t.roots {
		r.text(&sb, 0)
	}
	return sb.String()
}

func (s *Span) text(sb *strings.Builder, depth int) {
	end := s.Finish
	if end.IsZero() {
		end = s.Begin
	}
	fmt.Fprintf(sb, "%s%s %s", strings.Repeat("  ", depth), s.Name, end.Sub(s.Begin).Round(time.Microsecond))
	for _, a := range s.Attrs {
		fmt.Fprintf(sb, " %s=%v", a.Key, a.Value)
	}
	sb.WriteByte('\n')
	for _, c := range s.Children {
		c.text(sb, depth+1)
	}
}

// SnapshotTo writes the trace tree atomically to path, as JSON when the
// path ends in .json and as the text outline otherwise.
func (t *Tracer) SnapshotTo(path string) error {
	if t == nil {
		return nil
	}
	return atomicio.WriteFile(path, func(w io.Writer) error {
		if strings.HasSuffix(path, ".json") {
			return t.WriteJSON(w)
		}
		_, err := io.WriteString(w, t.Text())
		return err
	})
}
